/**
 * @file
 * Live iteration-level continuous-batching scheduler.
 *
 * The scheduler drives DecodeSessions directly, vllm-style: every
 * iteration it (1) drops queued or active requests past their
 * deadline, (2) admits waiting requests into free decode slots —
 * interactive tier first, FIFO within each tier, (3) preempts active
 * sessions (evict KV, re-enqueue at the head of the wait queue) when
 * the fleet KV budget is exhausted, preferring batch-tier victims
 * youngest-first, (4) plans a token-budgeted mixed iteration: every
 * decode-ready session steps, while sessions still ingesting their
 * prompt run one prefill chunk each under the PrefillPlanner's
 * budget — sessions pinned to different worker engines step in
 * parallel — and (5) prices the iteration from the sessions'
 * per-step cost records: weight-bound (shared) traffic is read once
 * per iteration, so its time is the max over the batch (a prefill
 * chunk's weight stream amortizes with its decode peers), while
 * per-request private traffic — including the chunk-length-scaled
 * prefill compute — accumulates. Tokens stream to the caller at each
 * iteration boundary, making TTFT and inter-token latency
 * first-class fleet metrics; a callback returning false cancels its
 * request at that boundary (streaming backpressure).
 *
 * Everything is deterministic for a fixed request stream: sessions
 * decode under per-request seeds (bit-identical to Engine::runOne no
 * matter how they interleave), admission/preemption decisions depend
 * only on the deterministic fleet clock and allocator state, and
 * per-iteration reductions run in admission order — so results are
 * identical across worker counts, and max_batch = 1 with an
 * unbounded KV pool reproduces sequential serving exactly.
 *
 * Preemption has two mechanisms (SchedulerOptions::preempt_mode).
 * Recompute (as in vllm's default): the victim's KV blocks return to
 * the pool and the request later re-decodes from scratch under the
 * same seed, reproducing the same tokens; already-streamed tokens
 * are not re-delivered, and the work thrown away stays priced into
 * the fleet timeline. Swap: the victim's KV blocks DMA to host
 * memory over the host link (priced as private KvSwapOut/KvSwapIn
 * traffic at true dims) and restore when pressure clears — the
 * session resumes bit-identically, keeping all decode and prefill
 * progress. Auto compares the modeled swap round trip against the
 * modeled cost of replaying the victim's work so far and picks per
 * victim. Admission can additionally be gated by a prefill-aware
 * watermark so long prompts only enter when their full KV fits.
 *
 * TopologyOptions generalizes the fleet beyond one logical device:
 * multiple lockstep decode devices (data-parallel pricing),
 * disaggregated prefill/decode roles — prompts chunk-ingest on
 * dedicated prefill devices with decoupled timelines and stream
 * their finished KV to a decode device over the priced peer link —
 * and overlapped KV transfers, where swaps and handoffs ride
 * per-device DMA channels concurrent with compute and stall only
 * the session whose blocks are in flight. All three knobs default
 * off and are bit-identical to the single-device serialized
 * scheduler when off.
 */

#ifndef SPECEE_SERVE_BATCH_SCHEDULER_HH
#define SPECEE_SERVE_BATCH_SCHEDULER_HH

#include <functional>
#include <vector>

#include "engines/decode_session.hh"
#include "engines/pipeline.hh"
#include "hw/cost_model.hh"
#include "obs/slo.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "serve/controller.hh"
#include "serve/prefill_planner.hh"
#include "serve/prefix_cache.hh"
#include "serve/request.hh"

namespace specee::serve {

/**
 * How the scheduler evicts a session under KV pressure.
 *
 * Recompute (vllm's default, and the only mechanism before this
 * knob existed) throws the victim's KV away and re-decodes from
 * scratch later; Swap DMAs the KV blocks to host memory over the
 * host link and restores them when pressure clears, preserving all
 * decode and prefill progress; Auto picks per victim by comparing
 * the modeled swap round trip against the modeled cost of re-doing
 * the victim's work so far — short sessions recompute (cheap to
 * replay), long sequences swap (cheap to move relative to replay).
 */
enum class PreemptMode : int {
    Recompute = 0,
    Swap = 1,
    Auto = 2,
};

/**
 * Logical fleet topology: how many modeled devices the fleet's
 * pricing spreads over, and how they specialize. The physical worker
 * engines passed to BatchScheduler::run execute the functional work
 * and may differ in count freely; the topology is what the cost
 * model prices, so results stay bit-identical for any worker count
 * at a fixed topology. The defaults (one unified device, serialized
 * transfers) reproduce the pre-topology scheduler bit-identically.
 */
struct TopologyOptions
{
    /**
     * Logical compute devices. Active sessions are assigned round-
     * robin at admission; each device prices its own share of the
     * batch (per-device shared weight-stream max plus private sum)
     * and the fleet advances in lockstep at the slowest device's
     * iteration time, data-parallel-serving style. 1 (default)
     * reproduces the single-device scheduler bit-identically.
     */
    int devices = 1;

    /**
     * Devices specialized to prompt ingestion (disaggregated
     * prefill/decode serving, DistServe/Mooncake-style). 0 (default)
     * = unified: every device runs mixed decode + prefill-chunk
     * iterations. > 0 carves the LAST `prefill_devices` devices out
     * of the lockstep decode batch: each free prefill device starts
     * one chunked prompt ingestion per boundary on its own
     * decoupled timeline (decode boundaries no longer wait for
     * chunk-inflated iterations), and a finished prompt streams its
     * KV to a decode device over the peer link (OpClass::KvHandoff)
     * before taking a decode slot. Requires chunked prefill
     * (prefill.chunk_tokens > 0), a platform peer link
     * (interconnect_gbs > 0) and prefill_devices < devices.
     */
    int prefill_devices = 0;

    /**
     * Price KV transfers — swap out/in and prefill->decode handoffs
     * — on per-device DMA channels (hw::TransferEngine) that advance
     * concurrently with compute, instead of serializing each
     * transfer on the fleet clock. A transfer stalls only the
     * session whose blocks ride the link: the session is held in its
     * slot but skips iterations at zero cost until the modeled DMA
     * lands. Emissions are bit-identical to the serialized path —
     * only timing moves. Off (default) keeps every transfer on the
     * fleet clock bit-identically.
     */
    bool overlap_transfers = false;
};

/** Scheduler knobs. */
struct SchedulerOptions
{
    /** Decode-batch slots; 1 reproduces sequential serving. */
    int max_batch = 8;

    /**
     * Fleet KV budget in physical paged-KV blocks (kKvBlockSize
     * positions of one layer each) across all active sessions;
     * 0 = unbounded. When the next iteration's worst-case growth
     * would exceed the budget, the scheduler preempts the youngest
     * active session(s). The oldest active session is never
     * preempted, so progress is guaranteed even when a single
     * request's working set exceeds the budget.
     */
    int kv_budget_blocks = 0;

    /**
     * Chunked-prefill policy: chunk size and iteration token budget.
     * chunk_tokens = 0 (default) disables the subsystem — prompts
     * prefill atomically and free at admission, bit-identical to the
     * pre-chunking scheduler.
     */
    PrefillOptions prefill;

    /**
     * Preemption mechanism under KV pressure. Recompute (default)
     * reproduces the pre-swap scheduler bit-identically; Swap moves
     * victims' KV to host memory and restores it; Auto chooses per
     * victim from the modeled costs.
     */
    PreemptMode preempt_mode = PreemptMode::Recompute;

    /**
     * Radix prefix cache over prompt token sequences (SGLang-style).
     * When enabled, retired prompts' KV blocks stay cached as a
     * third, lowest residency tier: requests with a shared
     * PromptSpec match their longest cached prefix at admission,
     * adopt the shared blocks and start prefill mid-prompt (the
     * cached span charges no prefill weight stream or compute).
     * Cached blocks count against kv_budget_blocks and evict LRU
     * before any session is preempted. Disabled (default) is
     * bit-identical to the cache-less scheduler.
     */
    PrefixCacheOptions prefix_cache;

    /**
     * Prefill-aware admission watermark (Sarathi/vllm-style), as a
     * fraction of kv_budget_blocks: a request is admitted only while
     * the fleet's COMMITTED working set — every active session's
     * full prompt + decode KV (what its blocks will grow to, not the
     * first-chunk share chunked admission reserves against today's
     * occupancy) plus the candidate's, plus the scheduler's
     * per-iteration growth reserve — fits under kv_watermark *
     * kv_budget_blocks. Bounds chunked-admission thrash (admit,
     * chunk, grow, evict, recompute) for long prompts under tight
     * budgets. 0 disables (first-chunk admission, bit-identical to
     * the PR 4 scheduler); ignored while kv_budget_blocks = 0.
     * Admission into an empty fleet bypasses the watermark so
     * progress is always possible.
     */
    double kv_watermark = 0.0;

    /**
     * Stage-split iteration pricing on pipeline-sharded engines
     * (pp > 1): the shared weight-bound time of each pipeline stage
     * is maxed over the batch per stage and the stage maxima sum —
     * sessions whose layer ranges overlap share a stage's weight
     * stream, sessions on disjoint stages serialize through the
     * pipeline. This is never cheaper than the legacy whole-model max
     * (which lets a shallow-exiting session ride free under a deep
     * peer even when their weight reads don't overlap) and equals it
     * for homogeneous batches. Off, or on an unsharded engine
     * (pp = 1, where every session's range is the whole model), the
     * legacy max is used bit-identically.
     */
    bool stage_pricing = true;

    /**
     * Early-exit-aware pipeline backfill (pp > 1, chunked prefill
     * with a bounded iteration budget): stages the previous
     * iteration's early exits left idle are converted into extra
     * prefill-budget tokens (max_tokens_per_iteration * free_stages /
     * n_stages), so queued prefill chunks ride the pipeline bubble —
     * micro-batch pipelining across iterations. Using the PREVIOUS
     * iteration's occupancy keeps planning causal and bit-identical
     * across worker counts. No-op at pp = 1 or while the budget is
     * unbounded.
     */
    bool stage_backfill = true;

    /**
     * Fleet topology: logical device count, prefill/decode role
     * split and transfer/compute overlap. Defaults reproduce the
     * single-device serialized-transfer scheduler bit-identically.
     */
    TopologyOptions topology;

    /**
     * Admission-level backpressure: max concurrently decoding
     * sessions per Request::consumer. A candidate whose consumer is
     * saturated is passed over (fresh admission and swap-in alike)
     * until one of its sessions retires; other consumers' requests
     * admit past it. 0 (default) disables — admission is bit-
     * identical to the uncapped scheduler.
     */
    int max_inflight_per_consumer = 0;

    /**
     * Cap on FRESH admissions per iteration boundary (fresh
     * candidates and disaggregated prefill starts; swap-in restores
     * and handoff completions are never capped — they resume work
     * already admitted). Smooths the prefill-burst ITL spike of an
     * arrival wave at the cost of queueing delay. 0 (default)
     * disables, bit-identical to the uncapped scheduler.
     */
    int max_admissions_per_iteration = 0;

    /**
     * SLO-driven adaptive control plane (serve::AdaptiveController):
     * at every decision epoch of the modeled clock the controller
     * reads the just-closed metrics window and Thompson-samples the
     * next setting of each controlled knob — prefill chunk size, KV
     * watermark, fresh-admission cap, per-tier exit thresholds —
     * from its discrete arm set, optimizing windowed SLO attainment.
     * Knob changes land at iteration boundaries and are recorded as
     * knob_change trace decisions and in FleetStats::controller.
     * Off (default) is bit-identical — emissions AND modeled costs —
     * to the controller-less scheduler.
     */
    ControllerOptions controller;

    /**
     * Per-tier service-level objectives (TTFT / worst ITL / e2e
     * deadline). Every retired request is judged against its tier's
     * spec (verdict in RequestOutcome::slo) and the fleet reduction
     * reports goodput_under_slo — tokens delivered by attaining
     * requests per second. Judging is pure post-hoc arithmetic on
     * the modeled timeline: specs never change scheduling, emissions
     * or modeled costs. Default (no objectives) leaves verdicts
     * unevaluated and goodput_under_slo counting every completed
     * request.
     */
    obs::TierSlo slo;

    /**
     * Windowed metrics timeline over the modeled clock (rolling
     * goodput, TTFT/ITL percentiles, KV / stage / channel occupancy,
     * exit-depth histograms) reduced into FleetStats::timeline.
     * window_s = 0 (default) disables; recording is bit-inert on
     * emissions and modeled costs either way.
     */
    obs::TimelineOptions timeline;

    /**
     * Fleet event trace (see obs/trace.hh): typed iteration / step /
     * decision / DMA events merged into FleetStats::trace, ready for
     * Chrome trace-event export. Off (default) records nothing; on
     * or off, emissions and modeled costs are bit-identical — the
     * trace only observes the modeled clock, never advances it — and
     * the merged trace is itself bit-deterministic across worker
     * counts.
     */
    obs::TraceOptions trace;
};

/** One streamed token, delivered at an iteration boundary. */
struct TokenEvent
{
    uint64_t request_id = 0;
    int token = 0;       ///< emitted token id
    int index = 0;       ///< 0-based position in the request's output
    double emit_s = 0.0; ///< fleet clock at emission
};

/**
 * Per-token streaming callback (invoked on the scheduler thread).
 * Return true to keep streaming; returning false cancels the request
 * at the current iteration boundary (no further tokens are decoded
 * or delivered, KV frees, and the request counts as cancelled in
 * FleetStats — distinct from a deadline drop).
 */
using TokenCallback = std::function<bool(const TokenEvent &)>;

/** Fleet-level serving metrics over one drained request stream. */
struct FleetStats
{
    long requests = 0;
    /**
     * Tokens DELIVERED to clients (each output position counted
     * once). Work re-decoded after a preemption is priced into
     * makespan and energy but not counted again here, so
     * tokens_per_s is goodput.
     */
    long tokens = 0;
    long iterations = 0;

    double makespan_s = 0.0; ///< first arrival -> last finish
    double tokens_per_s = 0.0;

    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_queue_s = 0.0;

    /** Streaming latency: time to first token and inter-token gap. */
    double mean_ttft_s = 0.0;
    double p50_ttft_s = 0.0;
    double p99_ttft_s = 0.0;
    double mean_itl_s = 0.0;
    double p50_itl_s = 0.0; ///< over all delivered inter-token gaps
    double p99_itl_s = 0.0;

    /**
     * Chunked-prefill accounting: chunks / true prompt tokens
     * executed (including work re-done after preemption) and the
     * mean admission-to-prompt-ready time of completed requests —
     * the prefill-queue side of a request's latency, vs the decode
     * side covered by ITL. All zero while chunking is disabled.
     */
    long prefill_chunks = 0;
    long prefill_tokens = 0;
    double mean_prefill_s = 0.0;

    double energy_j = 0.0;
    double energy_per_token_j = 0.0;
    double avg_power_w = 0.0;

    /** Mean decode-batch occupancy over iterations. */
    double mean_batch_occupancy = 0.0;

    /**
     * Decode-fleet session admissions: a waiting request entering
     * execution (fresh or re-admitted after a recompute preemption;
     * disaggregated prefill-device admissions count here too).
     * Swap-in restores are counted by swaps_in, not here. This is
     * the counter the trace's `admit` decision events reconcile
     * against.
     */
    long admissions = 0;

    /** KV-pressure / backpressure accounting. */
    long preemptions = 0;     ///< sessions evicted for KV pressure
    long dropped = 0;         ///< requests dropped past deadline
    long cancelled = 0;       ///< requests cancelled by the consumer
    long rejected = 0;        ///< requests refused at the queue
    long peak_kv_blocks = 0;  ///< peak fleet paged-KV occupancy
    double peak_fleet_mem_gb = 0.0; ///< weights once + fleet KV/act

    /**
     * Swap-to-host accounting. swaps_out counts preemptions served
     * by the swap mechanism (each also counts in `preemptions`);
     * swaps_in counts restores — they differ only by sessions that
     * were dropped or cancelled while in the host pool. Peaks track
     * the host-side footprint of swapped sessions.
     */
    long swaps_out = 0;
    long swaps_in = 0;
    long peak_host_kv_blocks = 0;   ///< peak host-pool occupancy
    double peak_host_mem_gb = 0.0;  ///< true-dims bytes of that KV

    /**
     * Prefix-cache accounting (all zero while the cache is off).
     * prefix_hits counts admissions that adopted a cached prefix;
     * cached_tokens sums the true-dims prompt tokens those
     * admissions skipped prefilling (re-admissions after a
     * recompute preemption count again — like prefill_tokens, this
     * is work executed, or here avoided, not goodput).
     */
    long prefix_hits = 0;
    long cached_tokens = 0;
    long cache_evictions = 0;    ///< LRU leaves evicted
    long peak_cached_blocks = 0; ///< peak blocks held by the cache

    /**
     * Admission deferrals charged to the prefill-aware watermark:
     * boundaries where the next candidate had room under the raw
     * first-chunk budget but its full prompt did not fit under
     * kv_watermark * kv_budget_blocks. 0 while the watermark is off.
     */
    long watermark_rejections = 0;

    /**
     * Iteration boundaries where at least one arrived candidate was
     * passed over because its consumer was at
     * max_inflight_per_consumer. 0 while the cap is off.
     */
    long backpressure_deferrals = 0;

    /**
     * Pipeline-stage accounting (stage graph of the fleet's engines;
     * n_stages = 1 on unsharded fleets). stage_busy sums, over
     * iterations, the stages some session's weight stream traversed;
     * pipeline_utilization = stage_busy / (iterations * n_stages) —
     * the fraction of stage-iterations doing work, 1.0 when every
     * stage is busy every iteration. peak_stage_occupancy is the max
     * stages concurrently occupied in one iteration (<= n_stages by
     * construction). backfill_grants / backfill_tokens count prefill
     * grants and tokens awarded ONLY because stage_backfill widened
     * the budget into last iteration's idle stages.
     */
    int n_stages = 1;
    long stage_busy = 0;
    int peak_stage_occupancy = 0;
    double pipeline_utilization = 0.0;
    long backfill_grants = 0;
    long backfill_tokens = 0;

    /**
     * Topology / transfer-engine accounting. handoffs counts
     * prefill->decode KV streams (disaggregated fleets only);
     * handoff_gb is their true-dims traffic. transfers_overlapped
     * counts DMA submissions that rode a TransferEngine channel
     * instead of the fleet clock (0 while overlap_transfers is
     * off). transfer_bytes_sent / _received census every swap and
     * handoff at both endpoints — initiation and landing (or
     * settle-at-drop) — so Σ sent == Σ received is a conservation
     * invariant of any drained run. prefill_busy_s sums the busy
     * seconds of the decoupled prefill-device timelines;
     * transfer_busy_s the busy seconds across all DMA channels.
     * peak_inflight_kv_blocks / _mem_gb track blocks pinned by
     * in-flight transfers at the per-iteration peak.
     */
    int n_devices = 1;
    int n_prefill_devices = 0;
    long handoffs = 0;
    double handoff_gb = 0.0;
    long transfers_overlapped = 0;
    double transfer_bytes_sent = 0.0;
    double transfer_bytes_received = 0.0;
    long peak_inflight_kv_blocks = 0;
    double peak_inflight_mem_gb = 0.0;
    double prefill_busy_s = 0.0;
    double transfer_busy_s = 0.0;

    /**
     * SLO attainment (SchedulerOptions::slo). slo_evaluated counts
     * retired requests some objective applied to (completed or
     * dropped; cancelled streams are the consumer's choice and stay
     * unevaluated); slo_attained counts those that kept every
     * promise. goodput_under_slo is tokens delivered by non-dropped,
     * non-cancelled requests whose verdict attained (vacuously so
     * when no spec is set), per makespan second — the headline
     * metric an SLO-driven control plane optimizes, degenerating to
     * completed-request goodput while SLO accounting is off.
     */
    long slo_evaluated = 0;
    long slo_attained = 0;
    double goodput_under_slo = 0.0;

    /**
     * Windowed metrics timeline (SchedulerOptions::timeline); empty
     * while the window width is 0.
     */
    std::vector<obs::TimelineWindow> timeline;

    /**
     * Merged fleet trace (SchedulerOptions::trace); empty while
     * tracing is off. Deterministically ordered — bit-identical
     * across worker counts — and exportable via
     * obs::chromeTraceJson / obs::writeChromeTrace.
     */
    std::vector<obs::TraceEvent> trace;

    /**
     * Merged per-request operator census of COMPLETED requests
     * (flop/byte counts and sequential-equivalent time); fleet time
     * comes from the live timeline above, not from this log, and
     * work discarded by preemption or deadline drops is priced into
     * the timeline but not re-counted here.
     */
    hw::OpLog oplog;

    /**
     * Adaptive-controller outcome (SchedulerOptions::controller):
     * epochs closed, knob changes applied, and the full knob
     * trajectory with per-epoch rewards. Empty while the controller
     * is off.
     */
    ControllerStats controller;
};

/**
 * True for operator classes whose traffic is read once per decode
 * iteration and amortizes across the batch (weight-bound: decoder
 * layers, KV fill, full LM head, draft model, embedding table) as
 * opposed to per-request private traffic (KV reads, predictors,
 * sliced heads).
 */
bool isSharedClass(hw::OpClass cls);

/** Live iteration-level continuous-batching scheduler. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const SchedulerOptions &opts);

    /**
     * Serve `requests` (must be sorted by (arrival, id)) to
     * completion over `engines`, one live DecodeSession per admitted
     * request. Outcomes are returned in request order. Sessions are
     * pinned round-robin to engines; engines step their sessions in
     * parallel threads, but every scheduling and pricing decision is
     * made on the caller's thread in admission order, so the result
     * is bit-identical for any engine count >= 1.
     */
    FleetStats run(const engines::Pipeline &pipe,
                   std::vector<engines::Engine *> engines,
                   std::vector<Request> requests,
                   std::vector<RequestOutcome> &outcomes,
                   const TokenCallback &on_token = {}) const;

    const SchedulerOptions &options() const { return opts_; }

  private:
    SchedulerOptions opts_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_BATCH_SCHEDULER_HH
