#include "serve/controller.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace specee::serve {

AdaptiveController::AdaptiveController(const ControllerOptions &opts,
                                       const ControllerKnobs &defaults)
    : enabled_(opts.enabled), opts_(opts), knobs_(defaults),
      rng_(opts.seed)
{
    if (!enabled_)
        return;
    specee_assert(opts_.epoch_s > 0.0,
                  "controller epoch_s must be > 0, got %g",
                  opts_.epoch_s);
    for (int c : opts_.chunk_arms)
        specee_assert(c >= 1, "chunk arm must be >= 1, got %d", c);
    for (double w : opts_.watermark_arms)
        specee_assert(w > 0.0 && w <= 1.0,
                      "watermark arm must be in (0, 1], got %g", w);
    for (int a : opts_.admit_arms)
        specee_assert(a >= 0, "admission arm must be >= 0, got %d", a);
    for (float t : opts_.interactive_exit_arms)
        specee_assert(t > 0.0f && t < 1.0f,
                      "exit-threshold arm must be in (0, 1), got %g",
                      static_cast<double>(t));
    for (float t : opts_.batch_exit_arms)
        specee_assert(t > 0.0f && t < 1.0f,
                      "exit-threshold arm must be in (0, 1), got %g",
                      static_cast<double>(t));

    // The chunk knob only steers chunk SIZE: when the scheduler runs
    // unchunked (static chunk_tokens == 0) the knob freezes, since
    // toggling chunking itself would change admission structure.
    const size_t n_arms[kNumKnobs] = {
        defaults.chunk_tokens > 0 ? opts_.chunk_arms.size() : 0,
        opts_.watermark_arms.size(),
        opts_.admit_arms.size(),
        opts_.interactive_exit_arms.size(),
        opts_.batch_exit_arms.size(),
    };
    for (int k = 0; k < kNumKnobs; ++k) {
        Knob &kn = knobs_state_[k];
        kn.active = n_arms[k] > 0;
        kn.alpha.assign(n_arms[k], 1.0);
        kn.beta.assign(n_arms[k], 1.0);
    }
}

bool
AdaptiveController::knobActive(KnobId k) const
{
    return knob(k).active;
}

double
AdaptiveController::posteriorMean(KnobId k, size_t arm) const
{
    const Knob &kn = knob(k);
    specee_assert(arm < kn.alpha.size(),
                  "posterior arm %zu out of range", arm);
    return kn.alpha[arm] / (kn.alpha[arm] + kn.beta[arm]);
}

double
AdaptiveController::sampleGamma(Rng &rng, double shape)
{
    // Marsaglia-Tsang squeeze; valid for shape >= 1, which always
    // holds here (Beta posteriors start at (1, 1) and only grow).
    specee_assert(shape >= 1.0, "gamma shape %g < 1", shape);
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / (3.0 * std::sqrt(d));
    for (;;) {
        const double x = rng.normal();
        const double t = 1.0 + c * x;
        if (t <= 0.0)
            continue;
        const double v = t * t * t;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (std::log(u) <
            0.5 * x * x + d - d * v + d * std::log(v))
            return d * v;
    }
}

double
AdaptiveController::sampleBeta(Rng &rng, double a, double b)
{
    const double ga = sampleGamma(rng, a);
    const double gb = sampleGamma(rng, b);
    return ga / (ga + gb);
}

bool
AdaptiveController::sampleKnob(KnobId k)
{
    Knob &kn = knob(k);
    if (!kn.active)
        return false;
    // One counter-derived fork per (decision, knob): the draw
    // sequence depends only on how many decisions preceded it, never
    // on rejection-loop lengths of other knobs.
    Rng r = rng_.fork(draws_++);
    size_t best = 0;
    double best_s = -1.0;
    for (size_t i = 0; i < kn.alpha.size(); ++i) {
        const double s = sampleBeta(r, kn.alpha[i], kn.beta[i]);
        if (s > best_s) {
            best_s = s;
            best = i;
        }
    }
    kn.chosen = best;
    kn.have_choice = true;
    bool moved = false;
    switch (k) {
    case KnobId::Chunk:
        moved = knobs_.chunk_tokens != opts_.chunk_arms[best];
        knobs_.chunk_tokens = opts_.chunk_arms[best];
        break;
    case KnobId::Watermark:
        moved = knobs_.kv_watermark != opts_.watermark_arms[best];
        knobs_.kv_watermark = opts_.watermark_arms[best];
        break;
    case KnobId::Admit:
        moved = knobs_.max_admissions_per_iteration !=
                opts_.admit_arms[best];
        knobs_.max_admissions_per_iteration = opts_.admit_arms[best];
        break;
    case KnobId::InteractiveExit:
        moved = knobs_.interactive_exit_threshold !=
                opts_.interactive_exit_arms[best];
        knobs_.interactive_exit_threshold =
            opts_.interactive_exit_arms[best];
        break;
    case KnobId::BatchExit:
        moved =
            knobs_.batch_exit_threshold != opts_.batch_exit_arms[best];
        knobs_.batch_exit_threshold = opts_.batch_exit_arms[best];
        break;
    }
    return moved;
}

int
AdaptiveController::decide(double now,
                           const obs::TimelineWindow &closed)
{
    specee_assert(enabled_, "decide() on a disabled controller");

    // Reward: fraction of the window's delivered tokens that came
    // from requests meeting their SLO. A window with iterations but
    // no tokens is evidence of starvation (reward 0); a fully idle
    // window is no evidence at all.
    double reward = 0.0;
    bool reward_valid = false;
    if (closed.tokens > 0) {
        reward = static_cast<double>(closed.slo_tokens) /
                 static_cast<double>(closed.tokens);
        reward_valid = true;
    } else if (closed.iterations > 0) {
        reward_valid = true;
    }

    if (reward_valid) {
        for (auto &kn : knobs_state_) {
            if (!kn.active || !kn.have_choice)
                continue;
            kn.alpha[kn.chosen] += reward;
            kn.beta[kn.chosen] += 1.0 - reward;
        }
    }

    int changed = 0;
    for (int k = 0; k < kNumKnobs; ++k)
        if (sampleKnob(static_cast<KnobId>(k)))
            ++changed;

    ControllerEpoch ep;
    ep.epoch = stats_.epochs;
    ep.t = now;
    ep.reward = reward;
    ep.reward_valid = reward_valid;
    ep.changed = changed;
    ep.knobs = knobs_;
    stats_.trajectory.push_back(ep);
    ++stats_.epochs;
    stats_.knob_changes += changed;
    return changed;
}

} // namespace specee::serve
