/**
 * @file
 * Chunked-prefill planner: token-budgeted mixed iterations.
 *
 * Real schedulers (Sarathi-style stall-free batching, vllm's chunked
 * prefill) split long prompts into chunks that share iterations with
 * decode steps, so prompt ingestion stops being free and atomic: a
 * prompt costs fleet time, contends with decode for the iteration's
 * token budget, and a partially prefilled request is a first-class
 * scheduler state (preemptable, deadline-droppable).
 *
 * The planner is the pure policy piece: given the pending prefill
 * tokens of every active session and the number of decode-ready
 * peers, it decides how many prompt tokens each mid-prefill session
 * ingests this iteration. Decode is never stalled — each decode step
 * reserves one token of the iteration budget first, and prefill
 * chunks share whatever remains, FIFO in admission order, capped at
 * `chunk_tokens` per session per iteration. The decision depends
 * only on its arguments, so fleet results stay bit-deterministic
 * across worker counts.
 *
 * Small chunks keep decode inter-token latency flat (each iteration
 * carries little extra prefill compute) at the price of a later
 * first token for long prompts; large chunks invert the tradeoff. A
 * chunk budget of 0 disables the subsystem entirely: prompts prefill
 * atomically and free at admission, reproducing the pre-chunking
 * scheduler bit-identically.
 */

#ifndef SPECEE_SERVE_PREFILL_PLANNER_HH
#define SPECEE_SERVE_PREFILL_PLANNER_HH

#include <vector>

namespace specee::serve {

/** Chunked-prefill knobs (scheduler policy, not engine config). */
struct PrefillOptions
{
    /**
     * Max prompt tokens (true dims) one session ingests per
     * iteration. 0 disables chunked prefill: prompts are ingested
     * atomically and free at admission (pre-chunking behavior,
     * bit-identical). A value at or above every prompt length prices
     * prefill as one monolithic chunk — the "unchunked but priced"
     * baseline of the TTFT-vs-ITL tradeoff.
     */
    int chunk_tokens = 0;

    /**
     * Iteration-wide token budget across the mixed batch: every
     * decode-ready session reserves one token, prefill chunks share
     * the remainder. 0 = unbounded (each prefilling session gets a
     * full chunk every iteration). Ignored while chunking is
     * disabled.
     */
    int max_tokens_per_iteration = 0;
};

/** Plans per-iteration prefill grants for the mixed batch. */
class PrefillPlanner
{
  public:
    explicit PrefillPlanner(const PrefillOptions &opts);

    /** True when chunked prefill is active (chunk_tokens > 0). */
    bool enabled() const { return opts_.chunk_tokens > 0; }

    /**
     * Grant prompt tokens for one iteration. `pending[i]` is the
     * prefill backlog of active session i (0 = decode-ready) and
     * `tier_rank[i]` its scheduling tier (lower = served first; the
     * scheduler passes the request priority, so interactive prompts
     * are never starved behind a batch-tier backlog);
     * `decode_sessions` is the number of decode-ready peers, each of
     * which reserves one budget token. Returns per-session grants,
     * allocated in ascending (tier_rank, admission index) order.
     * When no decode peer is active, the first-ranked prefilling
     * session is granted at least one token, so mixed iterations
     * always make progress.
     *
     * `extra_tokens` widens a bounded iteration budget: pipeline
     * backfill passes the token-equivalent of the stages last
     * iteration's early exits left idle, letting extra prefill chunks
     * ride in the bubble. Ignored while the budget is unbounded (the
     * budget cannot bind, so there is no bubble to fill) and when <=
     * 0 — plan(p, r, d, 0) is bit-identical to the three-argument
     * call.
     */
    std::vector<int> plan(const std::vector<int> &pending,
                          const std::vector<int> &tier_rank,
                          int decode_sessions,
                          long extra_tokens = 0) const;

    /** Chunks a prompt of `prompt_tokens` needs at this chunk size. */
    int chunksFor(int prompt_tokens) const;

    const PrefillOptions &options() const { return opts_; }

  private:
    PrefillOptions opts_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_PREFILL_PLANNER_HH
