#include "serve/prompt_spec.hh"

#include "util/logging.hh"

namespace specee::serve {

namespace {

/**
 * Deterministic token at position `pos` of stream `stream`
 * (splitmix64 finalizer). 30-bit so true tokens stay positive ints
 * with negligible cross-stream collision probability — a collision
 * would only shorten or lengthen a radix match by a token, never
 * corrupt content (matched tokens are equal by construction).
 */
int
streamToken(uint64_t stream, int pos)
{
    uint64_t z = stream + 0x9e3779b97f4a7c15ull *
                              (static_cast<uint64_t>(pos) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<int>(z & 0x3fffffffull);
}

} // namespace

int
PromptSpec::totalLen() const
{
    const int base = parent != nullptr ? parent->totalLen() : 0;
    return base + prefix_len + suffix_len;
}

uint64_t
PromptSpec::rootTemplate() const
{
    const PromptSpec *s = this;
    while (s->parent != nullptr)
        s = s->parent.get();
    // An all-suffix root (template_id 0) still needs a stable
    // affinity key; its suffix seed is one.
    return s->template_id != 0 ? s->template_id : s->suffix_seed;
}

std::vector<int>
resolvePromptTokens(const PromptSpec &spec)
{
    specee_assert(spec.shared(),
                  "resolvePromptTokens on an unshared PromptSpec");
    specee_assert(spec.prefix_len >= 0 && spec.suffix_len >= 0,
                  "negative PromptSpec lengths");
    std::vector<int> toks;
    if (spec.parent != nullptr)
        toks = resolvePromptTokens(*spec.parent);
    // Template tokens continue the chain at absolute positions, so a
    // longer prefix_len of the same template extends — never
    // diverges from — a shorter one.
    const int base = static_cast<int>(toks.size());
    for (int p = 0; p < spec.prefix_len; ++p)
        toks.push_back(streamToken(spec.template_id, base + p));
    for (int p = 0; p < spec.suffix_len; ++p)
        toks.push_back(streamToken(spec.suffix_seed ^ 0x5afef00dull, p));
    specee_assert(!toks.empty(), "PromptSpec derives an empty prompt");
    return toks;
}

std::vector<int>
derivePromptSim(const std::vector<int> &true_tokens, int sim_vocab)
{
    specee_assert(!true_tokens.empty() && sim_vocab > 0,
                  "derivePromptSim needs tokens and a sim vocab");
    const int len = static_cast<int>(true_tokens.size());
    std::vector<int> sim;
    sim.reserve(static_cast<size_t>(simRowsForSpan(len)) + 1);
    for (int p = 0; p < len; p += kPromptSimStride)
        sim.push_back(true_tokens[static_cast<size_t>(p)] % sim_vocab);
    // Decode input: the prompt's final token (never prefilled).
    sim.push_back(true_tokens.back() % sim_vocab);
    return sim;
}

} // namespace specee::serve
