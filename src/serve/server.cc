#include "serve/server.hh"

#include <mutex>
#include <thread>

#include "util/logging.hh"

namespace specee::serve {

Server::Server(const engines::Pipeline &pipe, const ServerOptions &opts)
    : pipe_(pipe), opts_(opts)
{
    specee_assert(opts.workers >= 1, "server needs >= 1 worker, got %d",
                  opts.workers);
    engines_.reserve(static_cast<size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i)
        engines_.push_back(pipe_.makeEngine(opts_.engine, opts_.spec));
}

void
Server::submit(Request r)
{
    specee_assert(r.gen.gen_len > 0,
                  "request %llu needs gen_len > 0, got %d",
                  static_cast<unsigned long long>(r.id), r.gen.gen_len);
    r.gen.n_instances = 1; // one generation per request
    queue_.push(std::move(r));
}

void
Server::submit(std::vector<Request> rs)
{
    for (auto &r : rs)
        submit(std::move(r));
}

ServeReport
Server::drain()
{
    std::vector<PendingRun> runs;
    std::mutex mu;

    auto workerFn = [this, &runs, &mu](engines::Engine &engine) {
        Request r;
        while (queue_.tryPop(r)) {
            const auto w = pipe_.makeWorkload(
                r.dataset, r.gen, opts_.engine.q4Calibrated());
            auto result = engine.runOne(w, 0, r.seed);
            PendingRun run;
            run.profile = buildStepProfile(result);
            run.request = std::move(r);
            run.result = std::move(result);
            std::lock_guard<std::mutex> lock(mu);
            runs.push_back(std::move(run));
        }
    };

    const size_t n_workers =
        std::min(engines_.size(), std::max<size_t>(1, queue_.size()));
    if (n_workers <= 1) {
        workerFn(*engines_.front());
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (size_t i = 0; i < n_workers; ++i)
            pool.emplace_back(workerFn, std::ref(*engines_[i]));
        for (auto &t : pool)
            t.join();
    }

    ServeReport report;
    BatchScheduler sched(opts_.sched);
    report.fleet = sched.schedule(std::move(runs), report.outcomes);
    return report;
}

} // namespace specee::serve
