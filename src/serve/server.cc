#include "serve/server.hh"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace specee::serve {

Server::Server(const engines::Pipeline &pipe, const ServerOptions &opts)
    : pipe_(pipe), opts_(opts), queue_(opts.queue_capacity)
{
    specee_assert(opts.workers >= 1, "server needs >= 1 worker, got %d",
                  opts.workers);
    engines_.reserve(static_cast<size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i)
        engines_.push_back(pipe_.makeEngine(opts_.engine, opts_.spec));
}

bool
Server::submit(Request r)
{
    specee_assert(r.gen.gen_len > 0,
                  "request %llu needs gen_len > 0, got %d",
                  static_cast<unsigned long long>(r.id), r.gen.gen_len);
    r.gen.n_instances = 1; // one generation per request
    return queue_.push(std::move(r));
}

size_t
Server::submit(std::vector<Request> rs)
{
    size_t accepted = 0;
    for (auto &r : rs)
        accepted += submit(std::move(r)) ? 1 : 0;
    return accepted;
}

ServeReport
Server::drain()
{
    std::vector<Request> requests;
    Request r;
    while (queue_.tryPop(r))
        requests.push_back(std::move(r));

    // Admission order never depends on submission interleaving.
    std::sort(requests.begin(), requests.end(),
              [](const Request &a, const Request &b) {
                  if (a.arrival_s != b.arrival_s)
                      return a.arrival_s < b.arrival_s;
                  return a.id < b.id;
              });

    std::vector<engines::Engine *> engines;
    engines.reserve(engines_.size());
    for (auto &e : engines_)
        engines.push_back(e.get());

    // Resolve the trace destination: the env var wins over the
    // option so any run can be traced without touching its caller.
    std::string trace_path = opts_.trace_path;
    if (const char *env = std::getenv("SPECEE_TRACE");
        env != nullptr && env[0] != '\0')
        trace_path = env;

    ServeReport report;
    SchedulerOptions sopts = opts_.sched;
    if (!trace_path.empty())
        sopts.trace.enabled = true;
    BatchScheduler sched(sopts);
    report.fleet = sched.run(pipe_, engines, std::move(requests),
                             report.outcomes, opts_.on_token);
    report.fleet.rejected = static_cast<long>(queue_.rejected());

    if (!trace_path.empty()) {
        const bool ok = obs::writeChromeTrace(
            trace_path, report.fleet.trace, sopts.topology.devices,
            sopts.topology.prefill_devices);
        if (!ok)
            specee_warn("could not write trace to %s",
                        trace_path.c_str());
    }
    return report;
}

} // namespace specee::serve
