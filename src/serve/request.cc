#include "serve/request.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "engines/pipeline.hh"
#include "oracle/profiles.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace specee::serve {

std::vector<Request>
synthesizeStream(const StreamOptions &opts)
{
    specee_assert(!opts.datasets.empty(), "stream needs a dataset mix");
    specee_assert(opts.n_requests > 0, "stream needs requests");
    specee_assert(opts.gen_len > 0, "stream needs gen_len > 0, got %d",
                  opts.gen_len);
    specee_assert(opts.prefix_reuse >= 0.0 && opts.prefix_reuse <= 1.0,
                  "prefix_reuse must be in [0, 1], got %f",
                  opts.prefix_reuse);
    specee_assert(opts.turns >= 1, "turns must be >= 1, got %d",
                  opts.turns);

    Rng rng(opts.seed);
    // Sharing decisions draw from a side stream so a stream with
    // prefix_reuse = 0 / turns = 1 is bit-identical to the legacy
    // generator (same gen/decode seeds, same arrival gaps).
    Rng share_rng(opts.seed ^ 0x51a2edull);
    const bool conversational = opts.prefix_reuse > 0.0 || opts.turns > 1;
    const uint64_t stream_template =
        (opts.seed ^ 0x7e3a91c2b5ull) | 1ull;

    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(opts.n_requests));
    double clock = 0.0;
    std::shared_ptr<const PromptSpec> prev_turn;
    uint64_t prev_id = 0;
    bool conv_shared = false;
    for (int i = 0; i < opts.n_requests; ++i) {
        Request r;
        r.id = opts.id_base + static_cast<uint64_t>(i);
        r.dataset =
            opts.datasets[static_cast<size_t>(i) % opts.datasets.size()];
        r.priority = opts.priority;
        r.gen.n_instances = 1;
        r.gen.gen_len = opts.gen_len;
        r.gen.prompt_len_override = opts.prompt_len;
        // Independent prompt per request: the workload generator is
        // seeded per request, not per stream.
        r.gen.seed = rng.next();
        r.seed = rng.next();
        if (opts.rate_rps > 0.0) {
            // Poisson arrivals: exponential inter-arrival gaps.
            clock += -std::log(1.0 - rng.uniform()) / opts.rate_rps;
            r.arrival_s = clock;
        }
        if (opts.deadline_s > 0.0)
            r.deadline_s = r.arrival_s + opts.deadline_s;

        if (conversational) {
            const int turn = i % opts.turns;
            const int prompt_len =
                opts.prompt_len > 0
                    ? opts.prompt_len
                    : oracle::profileByName(r.dataset).prompt_len;
            specee_assert(prompt_len >= 2,
                          "conversational streams need prompt_len >= 2, "
                          "got %d",
                          prompt_len);
            int tpl_len = opts.template_prefix_len > 0
                              ? opts.template_prefix_len
                              : 3 * prompt_len / 4;
            tpl_len = std::clamp(tpl_len, 1, prompt_len - 1);
            if (turn == 0) {
                conv_shared = opts.prefix_reuse >= 1.0 ||
                              (opts.prefix_reuse > 0.0 &&
                               share_rng.bernoulli(opts.prefix_reuse));
                prev_turn.reset();
                prev_id = 0;
            }
            if (turn == 0 && !conv_shared && opts.turns == 1) {
                // Standalone unshared prompt: the legacy path, with
                // the spec as deprecated-shim mirror of prompt_len.
                r.prompt = PromptSpec{};
                r.prompt.suffix_len = opts.prompt_len;
                r.prompt.suffix_seed = r.gen.seed;
            } else if (turn == 0) {
                // Conversation root. A non-shared conversation gets
                // a private template so its own later turns still
                // chain (and re-use their history), without
                // cross-conversation sharing.
                r.prompt.template_id =
                    conv_shared
                        ? stream_template
                        : ((opts.seed ^
                            (0x9e3779b97f4a7c15ull *
                             (static_cast<uint64_t>(i) + 11ull))) |
                           1ull);
                r.prompt.prefix_len = tpl_len;
                r.prompt.suffix_len = prompt_len - tpl_len;
                r.prompt.suffix_seed = r.gen.seed;
            } else {
                // Continuation turn: extend the parent's full prompt
                // with this turn's fresh text.
                r.prompt.parent = prev_turn;
                r.prompt.parent_id = prev_id;
                r.prompt.suffix_len = std::max(1, prompt_len - tpl_len);
                r.prompt.suffix_seed = r.gen.seed;
            }
            if (r.prompt.shared()) {
                prev_turn = std::make_shared<PromptSpec>(r.prompt);
                prev_id = r.id;
            }
        }
        reqs.push_back(std::move(r));
    }
    return reqs;
}

std::vector<Request>
mergeStreams(std::vector<Request> a, std::vector<Request> b)
{
    a.insert(a.end(), std::make_move_iterator(b.begin()),
             std::make_move_iterator(b.end()));
    std::sort(a.begin(), a.end(), [](const Request &x, const Request &y) {
        if (x.arrival_s != y.arrival_s)
            return x.arrival_s < y.arrival_s;
        return x.id < y.id;
    });
    // Duplicate ids would make token streams and outcome attribution
    // ambiguous; the contract (use StreamOptions::id_base) is
    // enforced, not just documented.
    std::vector<uint64_t> ids;
    ids.reserve(a.size());
    for (const Request &r : a)
        ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    for (size_t i = 1; i < ids.size(); ++i) {
        specee_assert(ids[i] != ids[i - 1],
                      "mergeStreams: duplicate request id %llu",
                      static_cast<unsigned long long>(ids[i]));
    }
    return a;
}

workload::Workload
buildPromptWorkload(const engines::Pipeline &pipe, const Request &r,
                    bool quantized_cal)
{
    if (!r.prompt.shared()) {
        workload::GenOptions gen = r.gen;
        // Deprecated-shim reconciliation: an unshared spec with an
        // explicit length behaves exactly like the old
        // prompt_len_override knob (pinned by test); a
        // default-constructed spec leaves the legacy path untouched.
        if (r.prompt.suffix_len > 0)
            gen.prompt_len_override = r.prompt.suffix_len;
        return pipe.makeWorkload(r.dataset, gen, quantized_cal);
    }
    const std::vector<int> toks = resolvePromptTokens(r.prompt);
    workload::GenOptions gen = r.gen;
    gen.prompt_len_override = static_cast<int>(toks.size());
    workload::Workload w =
        pipe.makeWorkload(r.dataset, gen, quantized_cal);
    specee_assert(w.instances.size() == 1,
                  "shared prompts need single-instance workloads");
    // The sim prompt becomes the stride-derived view of the true
    // tokens, so any two requests sharing K true tokens share their
    // first simRowsForSpan(K) sim tokens — the property that makes
    // cross-request KV block sharing bit-safe.
    w.instances.front().prompt =
        derivePromptSim(toks, pipe.modelConfig().sim.vocab);
    return w;
}

} // namespace specee::serve
