#include "serve/request.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/logging.hh"
#include "util/rng.hh"

namespace specee::serve {

std::vector<Request>
synthesizeStream(const StreamOptions &opts)
{
    specee_assert(!opts.datasets.empty(), "stream needs a dataset mix");
    specee_assert(opts.n_requests > 0, "stream needs requests");
    specee_assert(opts.gen_len > 0, "stream needs gen_len > 0, got %d",
                  opts.gen_len);

    Rng rng(opts.seed);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(opts.n_requests));
    double clock = 0.0;
    for (int i = 0; i < opts.n_requests; ++i) {
        Request r;
        r.id = opts.id_base + static_cast<uint64_t>(i);
        r.dataset =
            opts.datasets[static_cast<size_t>(i) % opts.datasets.size()];
        r.priority = opts.priority;
        r.gen.n_instances = 1;
        r.gen.gen_len = opts.gen_len;
        r.gen.prompt_len_override = opts.prompt_len;
        // Independent prompt per request: the workload generator is
        // seeded per request, not per stream.
        r.gen.seed = rng.next();
        r.seed = rng.next();
        if (opts.rate_rps > 0.0) {
            // Poisson arrivals: exponential inter-arrival gaps.
            clock += -std::log(1.0 - rng.uniform()) / opts.rate_rps;
            r.arrival_s = clock;
        }
        if (opts.deadline_s > 0.0)
            r.deadline_s = r.arrival_s + opts.deadline_s;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

std::vector<Request>
mergeStreams(std::vector<Request> a, std::vector<Request> b)
{
    a.insert(a.end(), std::make_move_iterator(b.begin()),
             std::make_move_iterator(b.end()));
    std::sort(a.begin(), a.end(), [](const Request &x, const Request &y) {
        if (x.arrival_s != y.arrival_s)
            return x.arrival_s < y.arrival_s;
        return x.id < y.id;
    });
    // Duplicate ids would make token streams and outcome attribution
    // ambiguous; the contract (use StreamOptions::id_base) is
    // enforced, not just documented.
    std::vector<uint64_t> ids;
    ids.reserve(a.size());
    for (const Request &r : a)
        ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    for (size_t i = 1; i < ids.size(); ++i) {
        specee_assert(ids[i] != ids[i - 1],
                      "mergeStreams: duplicate request id %llu",
                      static_cast<unsigned long long>(ids[i]));
    }
    return a;
}

} // namespace specee::serve
