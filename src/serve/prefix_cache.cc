#include "serve/prefix_cache.hh"

#include <algorithm>

#include "serve/prompt_spec.hh"
#include "util/logging.hh"

namespace specee::serve {

namespace {

constexpr int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

} // namespace

/**
 * One radix node. The edge is a run of true-dims tokens; the node
 * owns the sim KV rows [sim_begin, sim_end) — the stride marks
 * falling inside its true span — as per-layer chains of physical
 * block ids covering block indices sim_begin/16 .. (sim_end-1)/16.
 * Consecutive path nodes may share a boundary block (a row range
 * ending mid-block); match assembly resolves those deepest-wins.
 */
struct PrefixCache::Node
{
    std::vector<int> edge; ///< true tokens (empty only for roots)
    int start_true = 0;    ///< absolute true position of edge[0]
    int sim_begin = 0;     ///< first sim row owned
    int sim_end = 0;       ///< one past the last sim row owned
    /** Per-layer block ids covering this node's sim rows. */
    std::vector<std::vector<int>> chain;
    std::map<int, std::unique_ptr<Node>> children; ///< by first token
    Node *parent = nullptr;
    uint64_t last_use = 0; ///< fleet-global LRU stamp
    uint64_t birth = 0;    ///< creation order (LRU tie-break)
};

PrefixCache::PrefixCache(
    int n_layers, std::vector<std::shared_ptr<model::PagedKvCache>> pools)
    : nLayers_(n_layers), pools_(std::move(pools))
{
    specee_assert(nLayers_ > 0, "prefix cache needs layers");
    specee_assert(!pools_.empty(), "prefix cache needs engine pools");
    for (const auto &p : pools_) {
        specee_assert(p != nullptr, "prefix cache needs live pools");
        specee_assert(p->nLayers() == nLayers_,
                      "pool layer count %d != cache layer count %d",
                      p->nLayers(), nLayers_);
    }
    roots_.reserve(pools_.size());
    for (size_t e = 0; e < pools_.size(); ++e)
        roots_.push_back(std::make_unique<Node>());
}

PrefixCache::~PrefixCache() { clear(); }

void
PrefixCache::retainChain(size_t engine,
                         const std::vector<std::vector<int>> &chain)
{
    for (const auto &layer : chain) {
        for (int b : layer) {
            pools_[engine]->retainBlock(b);
            ++holds_[{engine, b}];
        }
    }
}

void
PrefixCache::releaseChain(size_t engine,
                          const std::vector<std::vector<int>> &chain)
{
    for (const auto &layer : chain) {
        pools_[engine]->releaseBlocks(layer);
        for (int b : layer) {
            auto it = holds_.find({engine, b});
            specee_assert(it != holds_.end() && it->second > 0,
                          "prefix cache released block %d it never held",
                          b);
            if (--it->second == 0)
                holds_.erase(it);
        }
    }
}

PrefixCache::Match
PrefixCache::match(const std::vector<int> &tokens, size_t engine,
                   uint64_t stamp)
{
    specee_assert(engine < roots_.size(), "engine %zu out of range",
                  engine);
    Match m;
    Node *node = roots_[engine].get();
    std::vector<Node *> path;
    size_t pos = 0;
    while (pos < tokens.size()) {
        auto it = node->children.find(tokens[pos]);
        if (it == node->children.end())
            break;
        Node *child = it->second.get();
        size_t k = 0;
        while (k < child->edge.size() && pos + k < tokens.size() &&
               child->edge[k] == tokens[pos + k])
            ++k;
        path.push_back(child);
        pos += k;
        if (k < child->edge.size())
            break; // diverged (or ran out) mid-edge
        node = child;
    }
    m.true_matched = static_cast<int>(pos);
    m.sim_matched = simRowsForSpan(m.true_matched);
    if (m.sim_matched == 0) {
        m.true_matched = 0;
        return m;
    }
    // Deepest-wins table assembly: walk the matched path shallow to
    // deep; a deeper node's boundary-block copy overwrites its
    // ancestor's, and by copy-on-write construction that copy holds
    // every shared row below its own span.
    const int need_blks = (m.sim_matched - 1) / model::kKvBlockSize + 1;
    m.table.assign(static_cast<size_t>(nLayers_),
                   std::vector<int>(static_cast<size_t>(need_blks), -1));
    for (Node *n : path) {
        n->last_use = stamp;
        if (n->sim_end <= n->sim_begin)
            continue;
        const int first = n->sim_begin / model::kKvBlockSize;
        const int last = (n->sim_end - 1) / model::kKvBlockSize;
        for (int b = first; b <= last && b < need_blks; ++b) {
            for (int l = 0; l < nLayers_; ++l)
                m.table[static_cast<size_t>(l)][static_cast<size_t>(b)] =
                    n->chain[static_cast<size_t>(l)]
                            [static_cast<size_t>(b - first)];
        }
    }
    for (const auto &layer : m.table) {
        for (int b : layer)
            specee_assert(b >= 0,
                          "matched prefix left a block table gap");
    }
    return m;
}

int
PrefixCache::peekSimMatched(const std::vector<int> &tokens,
                            size_t engine) const
{
    specee_assert(engine < roots_.size(), "engine %zu out of range",
                  engine);
    // The same walk match() runs, minus the stamp refreshes and the
    // table assembly — so the returned row count is exactly what an
    // immediate match() would report as sim_matched.
    const Node *node = roots_[engine].get();
    size_t pos = 0;
    while (pos < tokens.size()) {
        auto it = node->children.find(tokens[pos]);
        if (it == node->children.end())
            break;
        const Node *child = it->second.get();
        size_t k = 0;
        while (k < child->edge.size() && pos + k < tokens.size() &&
               child->edge[k] == tokens[pos + k])
            ++k;
        pos += k;
        if (k < child->edge.size())
            break; // diverged (or ran out) mid-edge
        node = child;
    }
    return simRowsForSpan(static_cast<int>(pos));
}

PrefixCache::Node *
PrefixCache::splitEdge(size_t engine, Node *child, int k)
{
    specee_assert(k > 0 && k < static_cast<int>(child->edge.size()),
                  "split point %d outside edge of %zu tokens", k,
                  child->edge.size());
    Node *parent = child->parent;
    auto mid = std::make_unique<Node>();
    mid->edge.assign(child->edge.begin(), child->edge.begin() + k);
    mid->start_true = child->start_true;
    mid->sim_begin = child->sim_begin;
    mid->sim_end = ceilDiv(child->start_true + k, kPromptSimStride);
    mid->parent = parent;
    mid->birth = births_++;
    mid->last_use = child->last_use;

    // Redistribute the chain: both new slices are sub-ranges of the
    // old chain (sharing the boundary block when the split lands
    // mid-block). Retain the new slices first, then release the
    // original chain, so no block's reference count transits zero.
    const std::vector<std::vector<int>> old_chain =
        std::move(child->chain);
    const int old_first = child->sim_begin / model::kKvBlockSize;
    auto slice = [&](int row_begin, int row_end) {
        std::vector<std::vector<int>> c(static_cast<size_t>(nLayers_));
        if (row_end > row_begin) {
            const int f = row_begin / model::kKvBlockSize;
            const int l2 = (row_end - 1) / model::kKvBlockSize;
            for (int l = 0; l < nLayers_; ++l) {
                const auto &src = old_chain[static_cast<size_t>(l)];
                c[static_cast<size_t>(l)].assign(
                    src.begin() + (f - old_first),
                    src.begin() + (l2 - old_first + 1));
            }
        }
        return c;
    };
    mid->chain = slice(mid->sim_begin, mid->sim_end);
    std::vector<std::vector<int>> tail =
        slice(mid->sim_end, child->sim_end);
    retainChain(engine, mid->chain);
    retainChain(engine, tail);
    releaseChain(engine, old_chain);

    child->chain = std::move(tail);
    child->edge.erase(child->edge.begin(), child->edge.begin() + k);
    child->start_true += k;
    child->sim_begin = mid->sim_end;

    auto &slot = parent->children.at(mid->edge.front());
    std::unique_ptr<Node> owned = std::move(slot);
    child->parent = mid.get();
    mid->children.emplace(child->edge.front(), std::move(owned));
    Node *raw = mid.get();
    slot = std::move(mid);
    return raw;
}

void
PrefixCache::insert(const std::vector<int> &tokens, size_t engine,
                    int seq, uint64_t stamp)
{
    specee_assert(engine < roots_.size(), "engine %zu out of range",
                  engine);
    specee_assert(!tokens.empty(), "cannot cache an empty prompt");
    model::PagedKvCache &pool = *pools_[engine];
    for (int l = 0; l < nLayers_; ++l) {
        specee_assert(
            pool.length(seq, l) ==
                simRowsForSpan(static_cast<int>(tokens.size())),
            "insert needs a fully prefilled prompt: layer %d has %d "
            "rows, prompt spans %d",
            l, pool.length(seq, l),
            simRowsForSpan(static_cast<int>(tokens.size())));
    }
    Node *node = roots_[engine].get();
    size_t pos = 0;
    while (true) {
        if (pos == tokens.size())
            return; // path already cached; stamps refreshed on the way
        auto it = node->children.find(tokens[pos]);
        if (it == node->children.end())
            break;
        Node *child = it->second.get();
        size_t k = 0;
        while (k < child->edge.size() && pos + k < tokens.size() &&
               child->edge[k] == tokens[pos + k])
            ++k;
        if (k == child->edge.size()) {
            child->last_use = stamp;
            node = child;
            pos += k;
            continue;
        }
        if (pos + k == tokens.size()) {
            // Prompt ends mid-edge: already covered, nothing to add.
            child->last_use = stamp;
            return;
        }
        node = splitEdge(engine, child, static_cast<int>(k));
        node->last_use = stamp;
        pos += k;
        break;
    }
    // New leaf: the unmatched tail, holding references on the
    // sequence's own blocks for the rows it covers. Those blocks are
    // valid cached content for the whole range — any row the session
    // wrote into a shared block went through a copy-on-write fork.
    auto leaf = std::make_unique<Node>();
    leaf->edge.assign(tokens.begin() + static_cast<long>(pos),
                      tokens.end());
    leaf->start_true = static_cast<int>(pos);
    leaf->sim_begin = ceilDiv(static_cast<int>(pos), kPromptSimStride);
    leaf->sim_end = simRowsForSpan(static_cast<int>(tokens.size()));
    leaf->parent = node;
    leaf->birth = births_++;
    leaf->last_use = stamp;
    leaf->chain.assign(static_cast<size_t>(nLayers_), {});
    if (leaf->sim_end > leaf->sim_begin) {
        for (int l = 0; l < nLayers_; ++l) {
            leaf->chain[static_cast<size_t>(l)] =
                pool.retainRows(seq, l, leaf->sim_begin, leaf->sim_end);
            for (int b : leaf->chain[static_cast<size_t>(l)])
                ++holds_[{engine, b}];
        }
    }
    node->children.emplace(tokens[pos], std::move(leaf));
}

bool
PrefixCache::evictLru()
{
    Node *best = nullptr;
    size_t best_engine = 0;
    for (size_t e = 0; e < roots_.size(); ++e) {
        std::vector<Node *> stack{roots_[e].get()};
        while (!stack.empty()) {
            Node *n = stack.back();
            stack.pop_back();
            for (auto &[tok, child] : n->children)
                stack.push_back(child.get());
            if (n->parent == nullptr || !n->children.empty())
                continue; // roots and interior nodes are not evictable
            if (best == nullptr ||
                std::pair(n->last_use, n->birth) <
                    std::pair(best->last_use, best->birth)) {
                best = n;
                best_engine = e;
            }
        }
    }
    if (best == nullptr)
        return false;
    releaseChain(best_engine, best->chain);
    best->parent->children.erase(best->edge.front());
    ++evictions_;
    return true;
}

void
PrefixCache::clear()
{
    for (size_t e = 0; e < roots_.size(); ++e) {
        std::vector<Node *> stack{roots_[e].get()};
        while (!stack.empty()) {
            Node *n = stack.back();
            stack.pop_back();
            for (auto &[tok, child] : n->children)
                stack.push_back(child.get());
            if (n->parent != nullptr)
                releaseChain(e, n->chain);
        }
        roots_[e]->children.clear();
    }
    specee_assert(holds_.empty(),
                  "prefix cache still holds %zu blocks after clear",
                  holds_.size());
}

long
PrefixCache::nodes() const
{
    long count = 0;
    for (const auto &root : roots_) {
        std::vector<const Node *> stack{root.get()};
        while (!stack.empty()) {
            const Node *n = stack.back();
            stack.pop_back();
            for (const auto &[tok, child] : n->children)
                stack.push_back(child.get());
            if (n->parent != nullptr)
                ++count;
        }
    }
    return count;
}

} // namespace specee::serve
