/**
 * @file
 * PrefixCache — SGLang-style radix tree over prompt token sequences
 * whose nodes map to refcounted paged-KV block chains.
 *
 * Each node's edge is a run of TRUE-dims prompt tokens; the node
 * owns the sim-dims KV rows whose stride marks fall inside its true
 * span (see prompt_spec.hh) as per-layer chains of physical block
 * ids, each holding one allocator reference. Admission matches a
 * request's derived tokens against the tree: the matched span's
 * rows are adopted by the new session (one more reference per
 * block), its prefill starts mid-prompt, and any later write into a
 * shared block forks copy-on-write — so divergent continuations
 * never observe each other.
 *
 * Chains at edge splits overlap on boundary blocks (a divergence
 * inside a block gives each continuation its own forked copy of
 * that block, holding the shared rows below the split plus its own
 * rows above it). Adoption therefore assembles the block table
 * deepest-wins along the matched path: the deepest node's boundary
 * copy contains every shared row below its span, by construction of
 * the copy-on-write fork.
 *
 * Eviction is LRU over leaves (fleet-wide stamps, creation-order
 * tie-break). Releasing a leaf only drops the cache's references;
 * blocks still referenced by live sessions stay pinned and return
 * to the free list when the last holder lets go — the cache can
 * never free memory out from under a session.
 *
 * All calls run on the scheduler thread; the cache is fleet-level
 * with one tree per worker engine (blocks are engine-local), and
 * shared prompts are pinned to engines by root template, so cache
 * decisions are bit-deterministic across worker counts.
 */

#ifndef SPECEE_SERVE_PREFIX_CACHE_HH
#define SPECEE_SERVE_PREFIX_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "model/paged_kv.hh"

namespace specee::serve {

/** Prefix-cache knobs (scheduler policy). */
struct PrefixCacheOptions
{
    /**
     * Master switch. Off (default) is bit-identical to the
     * pre-cache scheduler: no matching, no insertion, no extra
     * residency tier.
     */
    bool enabled = false;

    /**
     * Cap on distinct physical blocks the cache may hold references
     * on across the fleet; LRU leaves evict past it. 0 derives a
     * default (one max-context sequence's worth of blocks). The
     * cache additionally evicts under fleet KV pressure, before any
     * session is preempted — cached blocks are the third, lowest
     * residency tier beside device-active and host-swapped KV.
     */
    int capacity_blocks = 0;
};

/** Fleet-level radix prefix cache over per-engine paged-KV pools. */
class PrefixCache
{
  public:
    PrefixCache(int n_layers,
                std::vector<std::shared_ptr<model::PagedKvCache>> pools);
    ~PrefixCache();

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /** Longest-prefix match result (empty table on a miss). */
    struct Match
    {
        int true_matched = 0; ///< true-dims tokens covered
        int sim_matched = 0;  ///< sim KV rows adoptable
        /** Per-layer shared block chain covering the matched rows. */
        std::vector<std::vector<int>> table;
    };

    /**
     * Longest cached prefix of `tokens` on `engine`'s tree. A hit
     * refreshes the LRU stamps of the matched path. The returned
     * table is valid until the next insert/evict — adopt it
     * immediately (DecodeSession::adoptCachedPrefix retains the
     * blocks).
     */
    Match match(const std::vector<int> &tokens, size_t engine,
                uint64_t stamp);

    /**
     * Sim KV rows a match() of `tokens` on `engine` would adopt,
     * WITHOUT refreshing any LRU stamp or assembling a block table —
     * the admission watermark's what-if probe (cached rows are
     * already resident, so the candidate's committed working set
     * must not charge them again). Pure read; calling it any number
     * of times changes nothing.
     */
    int peekSimMatched(const std::vector<int> &tokens,
                       size_t engine) const;

    /**
     * Insert the prefilled prompt of pool sequence `seq` (its sim
     * rows must exactly cover simRowsForSpan(tokens.size()) — i.e.
     * prefill just completed): the unmatched tail becomes a new
     * leaf holding references on the sequence's blocks. Re-inserting
     * an existing path just refreshes its stamps.
     */
    void insert(const std::vector<int> &tokens, size_t engine, int seq,
                uint64_t stamp);

    /**
     * Evict the least-recently-used leaf (any engine), releasing its
     * block references. @return false when no leaf remains
     */
    bool evictLru();

    /** Release every node and reference (the tree ends empty). */
    void clear();

    /** Distinct physical blocks the cache holds references on. */
    long heldBlocks() const
    {
        return static_cast<long>(holds_.size());
    }

    /** Leaves evicted so far. */
    long evictions() const { return evictions_; }

    /** Radix nodes across all engines (roots excluded). */
    long nodes() const;

    bool empty() const { return nodes() == 0; }

  private:
    struct Node;

    void retainChain(size_t engine,
                     const std::vector<std::vector<int>> &chain);
    void releaseChain(size_t engine,
                      const std::vector<std::vector<int>> &chain);
    Node *splitEdge(size_t engine, Node *child, int k);

    int nLayers_;
    std::vector<std::shared_ptr<model::PagedKvCache>> pools_;
    std::vector<std::unique_ptr<Node>> roots_; ///< one tree per engine
    /** (engine, block) -> cache-held reference count. */
    std::map<std::pair<size_t, int>, int> holds_;
    long evictions_ = 0;
    uint64_t births_ = 0;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_PREFIX_CACHE_HH
