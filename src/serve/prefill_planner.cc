#include "serve/prefill_planner.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace specee::serve {

PrefillPlanner::PrefillPlanner(const PrefillOptions &opts) : opts_(opts)
{
    specee_assert(opts.chunk_tokens >= 0,
                  "chunk_tokens must be >= 0, got %d", opts.chunk_tokens);
    specee_assert(opts.max_tokens_per_iteration >= 0,
                  "max_tokens_per_iteration must be >= 0, got %d",
                  opts.max_tokens_per_iteration);
}

std::vector<int>
PrefillPlanner::plan(const std::vector<int> &pending,
                     const std::vector<int> &tier_rank,
                     int decode_sessions, long extra_tokens) const
{
    specee_assert(tier_rank.size() == pending.size(),
                  "tier_rank/pending size mismatch (%zu vs %zu)",
                  tier_rank.size(), pending.size());
    std::vector<int> grant(pending.size(), 0);
    if (!enabled())
        return grant;

    // Stall-free: decode steps reserve their budget first; prefill
    // shares the leftover. With only prefilling sessions active, at
    // least one token is granted so the iteration cannot spin.
    long leftover;
    if (opts_.max_tokens_per_iteration <= 0) {
        leftover = std::numeric_limits<long>::max();
    } else {
        leftover = std::max<long>(
            opts_.max_tokens_per_iteration - decode_sessions, 0);
        if (decode_sessions == 0)
            leftover = std::max<long>(leftover, 1);
        // Backfill bonus: stages idled by last iteration's early
        // exits, converted to budget tokens by the scheduler. Only a
        // bounded budget has a bubble to widen.
        if (extra_tokens > 0)
            leftover += extra_tokens;
    }

    // Serve prompts in (tier, admission) order: a short interactive
    // prompt admitted behind long batch-tier backlogs still lands
    // its chunks first.
    std::vector<size_t> order(pending.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return tier_rank[a] < tier_rank[b];
                     });

    for (size_t idx : order) {
        if (leftover <= 0)
            break;
        if (pending[idx] <= 0)
            continue;
        const int g = static_cast<int>(std::min<long>(
            {static_cast<long>(opts_.chunk_tokens),
             static_cast<long>(pending[idx]), leftover}));
        grant[idx] = g;
        leftover -= g;
    }
    return grant;
}

int
PrefillPlanner::chunksFor(int prompt_tokens) const
{
    if (!enabled())
        return 0;
    const int p = std::max(prompt_tokens, 1);
    return (p + opts_.chunk_tokens - 1) / opts_.chunk_tokens;
}

} // namespace specee::serve
