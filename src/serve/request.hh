/**
 * @file
 * Serving requests: the unit of work the cloud server schedules.
 *
 * A Request names a dataset profile, per-request generation options,
 * a simulated arrival time and an optional deadline; the
 * RequestOutcome pairs the engine's functional result with the
 * timeline the live scheduler gave it (admission, first token,
 * finish, preemptions). synthesizeStream() builds the Poisson
 * request mixes the offered-load sweeps use (§7.2.1).
 */

#ifndef SPECEE_SERVE_REQUEST_HH
#define SPECEE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engines/engine.hh"
#include "obs/slo.hh"
#include "serve/prompt_spec.hh"
#include "workload/datasets.hh"

namespace specee::engines {
class Pipeline;
}

namespace specee::serve {

/**
 * Latency tier of a request. Interactive requests are admitted
 * before batch-tier requests (FIFO within each tier), and the
 * scheduler prefers batch-tier sessions as preemption victims.
 */
enum class Priority : int {
    Interactive = 0, ///< latency-sensitive (chat) — admitted first
    Batch = 1,       ///< throughput work — preempted first
};

/** One generation request submitted to the server. */
struct Request
{
    uint64_t id = 0;
    std::string dataset = "MT-Bench";

    /** Per-request generation options (n_instances is forced to 1). */
    workload::GenOptions gen;

    /**
     * Prompt identity (template + suffix + parent turn). The
     * default-constructed spec is unshared: the request's prompt
     * length falls back to the deprecated knobs
     * (gen.prompt_len_override, then the dataset profile) and the
     * request never matches the prefix cache. buildPromptWorkload()
     * is the single place the three legacy length knobs and this
     * spec are reconciled.
     */
    PromptSpec prompt;

    double arrival_s = 0.0; ///< simulated arrival time
    uint64_t seed = 1;      ///< per-request decode seed

    /**
     * Absolute completion deadline (client cancellation): the live
     * scheduler drops the request at the first iteration boundary
     * past this time, whether queued or mid-decode. <= 0 disables.
     */
    double deadline_s = 0.0;

    /** Latency tier (admission order and preemption preference). */
    Priority priority = Priority::Interactive;

    /**
     * Originating consumer (tenant / API key) for admission-level
     * backpressure: SchedulerOptions::max_inflight_per_consumer caps
     * how many of one consumer's requests decode concurrently, so a
     * bursty tenant queues behind itself instead of monopolizing the
     * fleet. 0 (default) is the anonymous consumer — with the cap
     * unset every request lands there and admission is unchanged.
     */
    uint64_t consumer = 0;
};

/** Functional result + serving timeline of one completed request. */
struct RequestOutcome
{
    Request request;
    engines::RunResult result;

    double admit_s = 0.0;   ///< first joined a decode batch
    double finish_s = 0.0;  ///< last token emitted (or drop time)
    double latency_s = 0.0; ///< finish - arrival
    double queue_s = 0.0;   ///< first admit - arrival

    double ttft_s = 0.0;     ///< time to first token (from arrival)
    double mean_itl_s = 0.0; ///< mean inter-token latency
    double max_itl_s = 0.0;  ///< worst delivered inter-token gap

    /**
     * Time from first admission to prompt fully ingested. 0 when
     * chunked prefill is disabled (prompts ingest atomically and
     * free at admission).
     */
    double prefill_s = 0.0;
    int prefill_chunks = 0; ///< chunks the final (kept) run ingested

    int preemptions = 0;   ///< times preempted (either mechanism)
    int swaps = 0;         ///< preemptions served by swap-to-host
    bool dropped = false;  ///< deadline expired before completion
    bool cancelled = false; ///< stream consumer returned false

    /**
     * True-dims prompt tokens served from the prefix cache at
     * admission: their KV was adopted from cached blocks and their
     * prefill charged nothing. 0 on a cache miss or while the cache
     * is disabled.
     */
    int cached_tokens = 0;

    /**
     * Attainment against the tier's SchedulerOptions::slo spec,
     * judged when the request retires (completed or dropped;
     * cancelled streams stay unevaluated). Unevaluated while no
     * objective is configured for the tier.
     */
    obs::SloVerdict slo;
};

/** Options for synthesizing a request stream. */
struct StreamOptions
{
    /** Request mix, cycled round-robin (the paper's cloud mix). */
    std::vector<std::string> datasets = {"MT-Bench", "SUM", "QA"};

    int n_requests = 16;
    int gen_len = 24;

    /**
     * Offered load (requests/s) of a Poisson arrival process;
     * <= 0 means every request arrives at t = 0.
     */
    double rate_rps = 0.0;

    /** Per-request deadline relative to arrival; <= 0 = none. */
    double deadline_s = 0.0;

    /** Latency tier applied to every request of the stream. */
    Priority priority = Priority::Interactive;

    /**
     * Prompt length override (true dims) for every request; <= 0
     * keeps each dataset profile's prompt length. Long-prompt sweeps
     * set this to stress chunked prefill. DEPRECATED as a prompt
     * identity: it is mirrored into each request's PromptSpec, which
     * is what the serving layer now reads.
     */
    int prompt_len = 0;

    /**
     * Fraction of conversations whose prompt begins with the
     * stream's shared template (system prompt / few-shot header).
     * Shared prompts carry a PromptSpec and can hit the scheduler's
     * prefix cache; 0 (default) synthesizes the legacy stream of
     * fully independent prompts, bit-identically.
     */
    double prefix_reuse = 0.0;

    /**
     * True-dims length of the shared template; <= 0 derives 3/4 of
     * the prompt length. Ignored while prefix_reuse = 0 and
     * turns = 1.
     */
    int template_prefix_len = 0;

    /**
     * Turns per conversation. > 1 chains consecutive requests with
     * PromptSpec::parent / parent_id: each turn's prompt extends the
     * previous turn's full prompt with a fresh suffix, the
     * multi-turn traffic shape prefix caching serves best.
     */
    int turns = 1;

    /** First request id (merge streams with disjoint id ranges). */
    uint64_t id_base = 0;

    uint64_t seed = 0x5e21e;
};

/**
 * Deterministic request stream: round-robin dataset mix, Poisson
 * arrivals at `rate_rps`, independent per-request prompt and decode
 * seeds. Requests are returned in arrival order.
 */
std::vector<Request> synthesizeStream(const StreamOptions &opts);

/**
 * Merge two request streams into (arrival, id) order — the order
 * the scheduler admits in. Ids must be disjoint (use
 * StreamOptions::id_base); mixed interactive/batch sweeps merge a
 * short-prompt interactive stream with a long-prompt batch stream.
 */
std::vector<Request> mergeStreams(std::vector<Request> a,
                                  std::vector<Request> b);

/**
 * Build the single-instance workload a request decodes — the one
 * place the prompt-identity knobs are reconciled. An unshared spec
 * follows the legacy path exactly (prompt_len_override, then the
 * dataset profile default), so pre-PromptSpec callers are
 * bit-identical; a shared spec derives its true-token sequence,
 * overrides the cost model's true prompt length with it and replaces
 * the sim prompt with the stride-derived tokens (see prompt_spec.hh)
 * so equal true prefixes produce equal sim KV.
 */
workload::Workload buildPromptWorkload(const engines::Pipeline &pipe,
                                       const Request &r,
                                       bool quantized_cal);

} // namespace specee::serve

#endif // SPECEE_SERVE_REQUEST_HH
