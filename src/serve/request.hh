/**
 * @file
 * Serving requests: the unit of work the cloud server schedules.
 *
 * A Request names a dataset profile, per-request generation options
 * and a simulated arrival time; the RequestOutcome pairs the engine's
 * functional result with the timeline the BatchScheduler assigned to
 * it (admission, finish, latency). synthesizeStream() builds the
 * Poisson request mixes the offered-load sweeps use (§7.2.1).
 */

#ifndef SPECEE_SERVE_REQUEST_HH
#define SPECEE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engines/engine.hh"
#include "workload/datasets.hh"

namespace specee::serve {

/** One generation request submitted to the server. */
struct Request
{
    uint64_t id = 0;
    std::string dataset = "MT-Bench";

    /** Per-request generation options (n_instances is forced to 1). */
    workload::GenOptions gen;

    double arrival_s = 0.0; ///< simulated arrival time
    uint64_t seed = 1;      ///< per-request decode seed
};

/** Functional result + serving timeline of one completed request. */
struct RequestOutcome
{
    Request request;
    engines::RunResult result;

    double admit_s = 0.0;   ///< joined a decode batch
    double finish_s = 0.0;  ///< last token emitted
    double latency_s = 0.0; ///< finish - arrival
    double queue_s = 0.0;   ///< admit - arrival
};

/** Options for synthesizing a request stream. */
struct StreamOptions
{
    /** Request mix, cycled round-robin (the paper's cloud mix). */
    std::vector<std::string> datasets = {"MT-Bench", "SUM", "QA"};

    int n_requests = 16;
    int gen_len = 24;

    /**
     * Offered load (requests/s) of a Poisson arrival process;
     * <= 0 means every request arrives at t = 0.
     */
    double rate_rps = 0.0;

    uint64_t seed = 0x5e21e;
};

/**
 * Deterministic request stream: round-robin dataset mix, Poisson
 * arrivals at `rate_rps`, independent per-request prompt and decode
 * seeds. Requests are returned in arrival order.
 */
std::vector<Request> synthesizeStream(const StreamOptions &opts);

} // namespace specee::serve

#endif // SPECEE_SERVE_REQUEST_HH
