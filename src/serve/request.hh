/**
 * @file
 * Serving requests: the unit of work the cloud server schedules.
 *
 * A Request names a dataset profile, per-request generation options,
 * a simulated arrival time and an optional deadline; the
 * RequestOutcome pairs the engine's functional result with the
 * timeline the live scheduler gave it (admission, first token,
 * finish, preemptions). synthesizeStream() builds the Poisson
 * request mixes the offered-load sweeps use (§7.2.1).
 */

#ifndef SPECEE_SERVE_REQUEST_HH
#define SPECEE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engines/engine.hh"
#include "workload/datasets.hh"

namespace specee::serve {

/** One generation request submitted to the server. */
struct Request
{
    uint64_t id = 0;
    std::string dataset = "MT-Bench";

    /** Per-request generation options (n_instances is forced to 1). */
    workload::GenOptions gen;

    double arrival_s = 0.0; ///< simulated arrival time
    uint64_t seed = 1;      ///< per-request decode seed

    /**
     * Absolute completion deadline (client cancellation): the live
     * scheduler drops the request at the first iteration boundary
     * past this time, whether queued or mid-decode. <= 0 disables.
     */
    double deadline_s = 0.0;
};

/** Functional result + serving timeline of one completed request. */
struct RequestOutcome
{
    Request request;
    engines::RunResult result;

    double admit_s = 0.0;   ///< first joined a decode batch
    double finish_s = 0.0;  ///< last token emitted (or drop time)
    double latency_s = 0.0; ///< finish - arrival
    double queue_s = 0.0;   ///< first admit - arrival

    double ttft_s = 0.0;     ///< time to first token (from arrival)
    double mean_itl_s = 0.0; ///< mean inter-token latency

    int preemptions = 0;  ///< times evicted and re-decoded
    bool dropped = false; ///< deadline expired before completion
};

/** Options for synthesizing a request stream. */
struct StreamOptions
{
    /** Request mix, cycled round-robin (the paper's cloud mix). */
    std::vector<std::string> datasets = {"MT-Bench", "SUM", "QA"};

    int n_requests = 16;
    int gen_len = 24;

    /**
     * Offered load (requests/s) of a Poisson arrival process;
     * <= 0 means every request arrives at t = 0.
     */
    double rate_rps = 0.0;

    /** Per-request deadline relative to arrival; <= 0 = none. */
    double deadline_s = 0.0;

    uint64_t seed = 0x5e21e;
};

/**
 * Deterministic request stream: round-robin dataset mix, Poisson
 * arrivals at `rate_rps`, independent per-request prompt and decode
 * seeds. Requests are returned in arrival order.
 */
std::vector<Request> synthesizeStream(const StreamOptions &opts);

} // namespace specee::serve

#endif // SPECEE_SERVE_REQUEST_HH
