#include "serve/batch_scheduler.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <thread>

#include "hw/memory_tracker.hh"
#include "metrics/stats.hh"
#include "model/paged_kv.hh"
#include "util/logging.hh"

namespace specee::serve {

bool
isSharedClass(hw::OpClass cls)
{
    return hw::isBatchAmortized(cls);
}

BatchScheduler::BatchScheduler(const SchedulerOptions &opts) : opts_(opts)
{
    specee_assert(opts.max_batch >= 1, "max_batch must be >= 1, got %d",
                  opts.max_batch);
    specee_assert(opts.kv_budget_blocks >= 0,
                  "kv_budget_blocks must be >= 0, got %d",
                  opts.kv_budget_blocks);
}

namespace {

/** One request moving through the waiting queue / decode slots. */
struct Entry
{
    Request req;
    workload::Workload w; ///< built once, survives preemption
    size_t outcome = 0;   ///< index into `outcomes`

    std::unique_ptr<engines::DecodeSession> sess;
    size_t engine = 0;

    double first_admit_s = -1.0;
    double first_token_s = -1.0;
    double last_token_s = 0.0;
    double itl_sum_s = 0.0;
    long itl_gaps = 0;
    size_t streamed = 0; ///< tokens already delivered downstream
    int preemptions = 0;

    engines::StepCost cost; ///< most recent iteration's step cost
};

} // namespace

FleetStats
BatchScheduler::run(const engines::Pipeline &pipe,
                    std::vector<engines::Engine *> engines,
                    std::vector<Request> requests,
                    std::vector<RequestOutcome> &outcomes,
                    const TokenCallback &on_token) const
{
    outcomes.clear();
    FleetStats fleet;
    fleet.rejected = 0;
    if (requests.empty())
        return fleet;
    specee_assert(!engines.empty(), "scheduler needs >= 1 engine");
    specee_assert(std::is_sorted(requests.begin(), requests.end(),
                                 [](const Request &a, const Request &b) {
                                     if (a.arrival_s != b.arrival_s)
                                         return a.arrival_s < b.arrival_s;
                                     return a.id < b.id;
                                 }),
                  "requests must be sorted by (arrival, id)");

    const engines::EngineConfig &ecfg = engines.front()->config();
    const model::ModelConfig &mcfg = engines.front()->modelConfig();
    const size_t slots = static_cast<size_t>(opts_.max_batch);

    // One shared physical KV pool per worker engine, sized so a full
    // decode batch of maximum-context sequences can never physically
    // exhaust it even if every session lands on one engine — the
    // *budget* (policy) is enforced fleet-wide by the scheduler
    // against real allocator occupancy, the pool (mechanism) just
    // backs the block tables.
    const int per_seq_blocks =
        mcfg.n_layers * (mcfg.context_len / model::kKvBlockSize + 2);
    std::vector<std::shared_ptr<model::PagedKvCache>> pools;
    pools.reserve(engines.size());
    for (size_t e = 0; e < engines.size(); ++e) {
        pools.push_back(std::make_shared<model::PagedKvCache>(
            mcfg.n_layers,
            static_cast<int>(slots) * per_seq_blocks,
            mcfg.sim.hidden));
    }

    // Worst-case block growth of one session in one iteration: every
    // committed token may open a fresh block in every layer.
    const int tokens_per_step =
        ecfg.spec_decode ? ecfg.tree.depth() + 1 : 1;
    const int iter_growth = mcfg.n_layers * tokens_per_step;

    // Fleet memory at TRUE dims: weights/draft/predictors once,
    // per-session KV and activations summed. Same deployment model
    // as the per-request peak_mem_gb (Engine::finalizeRun).
    const hw::MemoryTracker mem = engines.front()->makeMemoryTracker();

    const size_t n = requests.size();
    outcomes.resize(n);

    std::deque<Entry> waiting;
    for (size_t i = 0; i < n; ++i) {
        Entry e;
        e.w = pipe.makeWorkload(requests[i].dataset, requests[i].gen,
                                ecfg.q4Calibrated());
        e.req = std::move(requests[i]);
        e.outcome = i;
        outcomes[i].request = e.req;
        waiting.push_back(std::move(e));
    }

    const double t0 = waiting.front().req.arrival_s;
    double clock = t0;
    double occupancy = 0.0;
    double itl_sum = 0.0;
    long itl_gaps = 0;
    uint64_t admit_seq = 0;
    std::vector<Entry> active;
    active.reserve(slots);

    const auto expired = [&](const Request &r) {
        return r.deadline_s > 0.0 && clock > r.deadline_s;
    };
    const auto drop = [&](Entry &e) {
        RequestOutcome &o = outcomes[e.outcome];
        o.dropped = true;
        o.finish_s = clock;
        o.latency_s = clock - e.req.arrival_s;
        o.admit_s = e.first_admit_s >= 0.0 ? e.first_admit_s : clock;
        o.queue_s = std::max(0.0, o.admit_s - e.req.arrival_s);
        o.preemptions = e.preemptions;
        ++fleet.dropped;
    };
    const auto fleetBlocks = [&] {
        long b = 0;
        for (const auto &a : active)
            b += a.sess->kvBlocks();
        return b;
    };
    const auto promptBlocks = [&](const Entry &e) {
        const int prompt =
            static_cast<int>(e.w.instances.front().prompt.size());
        return mcfg.n_layers *
               ((prompt + model::kKvBlockSize - 1) /
                model::kKvBlockSize);
    };

    while (!waiting.empty() || !active.empty()) {
        // --- iteration boundary: deadlines, admission, preemption --
        for (size_t i = 0; i < active.size();) {
            if (expired(active[i].req)) {
                drop(active[i]);
                active.erase(active.begin() +
                             static_cast<long>(i)); // KV frees here
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < waiting.size();) {
            if (expired(waiting[i].req)) {
                drop(waiting[i]);
                waiting.erase(waiting.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }

        while (!waiting.empty() && active.size() < slots) {
            Entry &head = waiting.front();
            if (head.req.arrival_s > clock)
                break;
            if (opts_.kv_budget_blocks > 0 && !active.empty() &&
                fleetBlocks() + promptBlocks(head) +
                        iter_growth *
                            static_cast<long>(active.size() + 1) >
                    opts_.kv_budget_blocks)
                break;
            Entry e = std::move(head);
            waiting.pop_front();
            e.engine = admit_seq++ % engines.size();
            e.sess = engines[e.engine]->makeSession(
                e.w, e.req.seed,
                std::make_unique<model::SequenceKv>(pools[e.engine]));
            e.sess->prefill();
            if (e.first_admit_s < 0.0)
                e.first_admit_s = clock;
            active.push_back(std::move(e));
        }

        if (active.empty()) {
            if (waiting.empty())
                break;
            // Idle: jump to the next arrival (expired heads were
            // dropped above, so the head is a genuine future event).
            clock = std::max(clock, waiting.front().req.arrival_s);
            continue;
        }

        // KV pressure: evict the youngest sessions until the worst
        // case of the next iteration fits the fleet budget. The
        // oldest session is never evicted (guaranteed progress).
        while (opts_.kv_budget_blocks > 0 && active.size() > 1 &&
               fleetBlocks() +
                       iter_growth * static_cast<long>(active.size()) >
                   opts_.kv_budget_blocks) {
            Entry victim = std::move(active.back());
            active.pop_back();
            victim.sess.reset(); // frees the KV blocks
            ++victim.preemptions;
            ++fleet.preemptions;
            // Recompute preemption: back to the head of the wait
            // queue (it is the youngest admission, so FIFO order is
            // preserved) and re-decode from scratch later.
            waiting.push_front(std::move(victim));
        }

        // --- step every active session, in parallel by engine ------
        size_t engines_used = 0;
        {
            std::vector<bool> has(engines.size(), false);
            for (const auto &a : active) {
                if (!has[a.engine]) {
                    has[a.engine] = true;
                    ++engines_used;
                }
            }
            auto stepEngine = [&](size_t eng) {
                for (auto &a : active) {
                    if (a.engine != eng)
                        continue;
                    a.sess->step();
                    a.cost = a.sess->lastStep();
                }
            };
            if (engines_used <= 1) {
                for (size_t e = 0; e < engines.size(); ++e)
                    if (has[e])
                        stepEngine(e);
            } else {
                std::vector<std::thread> threads;
                threads.reserve(engines_used);
                for (size_t e = 0; e < engines.size(); ++e)
                    if (has[e])
                        threads.emplace_back(stepEngine, e);
                for (auto &t : threads)
                    t.join();
            }
        }

        // --- price the iteration (admission order, deterministic) --
        double shared_t = 0.0, private_t = 0.0;
        double shared_e = 0.0, private_e = 0.0;
        for (const auto &a : active) {
            shared_t = std::max(shared_t, a.cost.shared_s);
            shared_e = std::max(shared_e, a.cost.shared_j);
            private_t += a.cost.private_s;
            private_e += a.cost.private_j;
        }
        clock += shared_t + private_t;
        fleet.energy_j += shared_e + private_e;
        occupancy += static_cast<double>(active.size());
        ++fleet.iterations;

        // --- stream new tokens, track TTFT / inter-token gaps ------
        // fleet.tokens counts DELIVERED tokens only: a preempted
        // session re-decodes its prefix, but those tokens were
        // already streamed, so the recompute shows up as time and
        // energy (goodput degradation), not as extra throughput.
        for (auto &a : active) {
            const auto &em = a.sess->emission();
            for (size_t i = a.streamed; i < em.tokens.size(); ++i) {
                ++fleet.tokens;
                if (a.first_token_s < 0.0) {
                    a.first_token_s = clock;
                } else {
                    a.itl_sum_s += clock - a.last_token_s;
                    ++a.itl_gaps;
                }
                a.last_token_s = clock;
                if (on_token) {
                    on_token(TokenEvent{a.req.id, em.tokens[i],
                                        static_cast<int>(i), clock});
                }
                a.streamed = i + 1;
            }
        }

        // --- fleet KV / memory census (peak over iterations) -------
        long blocks = 0, positions = 0;
        for (const auto &a : active) {
            blocks += a.sess->kvBlocks();
            positions += a.sess->modeledPositions();
        }
        fleet.peak_kv_blocks = std::max(fleet.peak_kv_blocks, blocks);
        fleet.peak_fleet_mem_gb = std::max(
            fleet.peak_fleet_mem_gb,
            hw::MemoryTracker::toGiB(mem.fleetTotalBytes(
                positions, static_cast<int>(active.size()))));

        // --- retire finished sessions ------------------------------
        size_t keep = 0;
        for (size_t i = 0; i < active.size(); ++i) {
            Entry &a = active[i];
            if (!a.sess->finished()) {
                if (keep != i)
                    active[keep] = std::move(a);
                ++keep;
                continue;
            }
            RequestOutcome &o = outcomes[a.outcome];
            o.result = a.sess->finalize();
            o.admit_s = a.first_admit_s;
            o.queue_s = a.first_admit_s - a.req.arrival_s;
            o.finish_s = clock;
            o.latency_s = clock - a.req.arrival_s;
            o.ttft_s = a.first_token_s - a.req.arrival_s;
            o.mean_itl_s = a.itl_gaps > 0
                               ? a.itl_sum_s /
                                     static_cast<double>(a.itl_gaps)
                               : 0.0;
            o.preemptions = a.preemptions;
            itl_sum += a.itl_sum_s;
            itl_gaps += a.itl_gaps;
        }
        active.resize(keep);
    }

    // --- reduce fleet metrics over the finished timeline -----------
    fleet.requests = static_cast<long>(n);
    fleet.makespan_s = clock - t0;
    fleet.tokens_per_s =
        fleet.makespan_s > 0.0
            ? static_cast<double>(fleet.tokens) / fleet.makespan_s
            : 0.0;

    std::vector<double> latencies, queues, ttfts;
    latencies.reserve(n);
    queues.reserve(n);
    ttfts.reserve(n);
    for (const auto &o : outcomes) {
        if (o.dropped)
            continue;
        latencies.push_back(o.latency_s);
        queues.push_back(o.queue_s);
        ttfts.push_back(o.ttft_s);
        fleet.oplog.merge(o.result.stats.oplog);
    }
    fleet.mean_latency_s = metrics::mean(latencies);
    fleet.p50_latency_s = metrics::percentile(latencies, 50.0);
    fleet.p99_latency_s = metrics::percentile(latencies, 99.0);
    fleet.mean_queue_s = metrics::mean(queues);
    fleet.mean_ttft_s = metrics::mean(ttfts);
    fleet.p50_ttft_s = metrics::percentile(ttfts, 50.0);
    fleet.p99_ttft_s = metrics::percentile(ttfts, 99.0);
    fleet.mean_itl_s =
        itl_gaps > 0 ? itl_sum / static_cast<double>(itl_gaps) : 0.0;
    fleet.energy_per_token_j =
        fleet.tokens > 0
            ? fleet.energy_j / static_cast<double>(fleet.tokens)
            : 0.0;
    fleet.avg_power_w = fleet.makespan_s > 0.0
                            ? fleet.energy_j / fleet.makespan_s
                            : 0.0;
    fleet.mean_batch_occupancy =
        fleet.iterations > 0
            ? occupancy / static_cast<double>(fleet.iterations)
            : 0.0;
    return fleet;
}

} // namespace specee::serve
