#include "serve/batch_scheduler.hh"

#include <algorithm>

#include "metrics/stats.hh"
#include "util/logging.hh"

namespace specee::serve {

bool
isSharedClass(hw::OpClass cls)
{
    switch (cls) {
    case hw::OpClass::DecoderLayer:
    case hw::OpClass::KvFill:
    case hw::OpClass::LmHeadFull:
    case hw::OpClass::Draft:
    // The embedding table is a weight read too: the batch issues ONE
    // gather kernel per iteration, so the launch-dominated Embed
    // charge (the bytes are ~hidden*2 per request, noise next to the
    // launch overhead) amortizes like the other weight-bound
    // classes. Charging it per-request overcounted batched runs by
    // one kernel launch per extra active request.
    case hw::OpClass::Embed:
    case hw::OpClass::Sync:
    case hw::OpClass::Overhead:
        return true;
    default:
        return false;
    }
}

StepProfile
buildStepProfile(const engines::RunResult &result)
{
    // Per-step forward depth: the emission records layers executed
    // per token, which is what the shared weight read scales with.
    std::vector<int> layers;
    for (const auto &em : result.emissions)
        layers.insert(layers.end(), em.exit_layers.begin(),
                      em.exit_layers.end());
    specee_assert(!layers.empty(), "run produced no tokens");

    double shared_t = 0.0, private_t = 0.0;
    double shared_e = 0.0, private_e = 0.0;
    for (int c = 0; c < hw::kNumOpClasses; ++c) {
        const auto cls = static_cast<hw::OpClass>(c);
        const auto &tot = result.stats.oplog.totals(cls);
        if (isSharedClass(cls)) {
            shared_t += tot.time_s;
            shared_e += tot.energy_j;
        } else {
            private_t += tot.time_s;
            private_e += tot.energy_j;
        }
    }

    long layer_sum = 0;
    for (int l : layers)
        layer_sum += l;
    specee_assert(layer_sum > 0, "run executed no layers");

    const auto n = static_cast<double>(layers.size());
    StepProfile p;
    p.shared_s.reserve(layers.size());
    p.private_s.reserve(layers.size());
    p.shared_j.reserve(layers.size());
    p.private_j.reserve(layers.size());
    for (int l : layers) {
        const double w =
            static_cast<double>(l) / static_cast<double>(layer_sum);
        p.shared_s.push_back(shared_t * w);
        p.shared_j.push_back(shared_e * w);
        p.private_s.push_back(private_t / n);
        p.private_j.push_back(private_e / n);
    }
    return p;
}

BatchScheduler::BatchScheduler(const SchedulerOptions &opts) : opts_(opts)
{
    specee_assert(opts.max_batch >= 1, "max_batch must be >= 1, got %d",
                  opts.max_batch);
}

FleetStats
BatchScheduler::schedule(std::vector<PendingRun> runs,
                         std::vector<RequestOutcome> &outcomes) const
{
    outcomes.clear();
    FleetStats fleet;
    if (runs.empty())
        return fleet;

    // Admission order never depends on which worker finished first.
    std::sort(runs.begin(), runs.end(),
              [](const PendingRun &a, const PendingRun &b) {
                  if (a.request.arrival_s != b.request.arrival_s)
                      return a.request.arrival_s < b.request.arrival_s;
                  return a.request.id < b.request.id;
              });

    struct Active
    {
        size_t run;
        size_t step = 0;
        size_t outcome; ///< index into `outcomes`
    };

    const size_t n = runs.size();
    const auto slots = static_cast<size_t>(opts_.max_batch);
    outcomes.resize(n);

    const double t0 = runs.front().request.arrival_s;
    double clock = t0;
    double occupancy = 0.0;
    size_t next = 0;
    std::vector<Active> active;
    active.reserve(slots);

    while (next < n || !active.empty()) {
        // Iteration boundary: admit FIFO into free decode slots.
        while (next < n && active.size() < slots &&
               runs[next].request.arrival_s <= clock) {
            const size_t oi = next;
            outcomes[oi].request = runs[next].request;
            outcomes[oi].result = std::move(runs[next].result);
            outcomes[oi].admit_s = clock;
            outcomes[oi].queue_s = clock - runs[next].request.arrival_s;
            active.push_back({next, 0, oi});
            ++next;
        }
        if (active.empty()) {
            clock = runs[next].request.arrival_s;
            continue;
        }

        // One decode iteration: every active request advances one
        // token. Shared weight traffic is read once (max over the
        // batch); per-request traffic accumulates.
        double shared_t = 0.0, private_t = 0.0;
        double shared_e = 0.0, private_e = 0.0;
        for (const auto &a : active) {
            const auto &p = runs[a.run].profile;
            shared_t = std::max(shared_t, p.shared_s[a.step]);
            shared_e = std::max(shared_e, p.shared_j[a.step]);
            private_t += p.private_s[a.step];
            private_e += p.private_j[a.step];
        }
        clock += shared_t + private_t;
        fleet.energy_j += shared_e + private_e;
        fleet.tokens += static_cast<long>(active.size());
        occupancy += static_cast<double>(active.size());
        ++fleet.iterations;

        // Retire finished requests; survivors keep their FIFO order.
        size_t keep = 0;
        for (size_t i = 0; i < active.size(); ++i) {
            Active a = active[i];
            ++a.step;
            if (a.step >= runs[a.run].profile.steps()) {
                outcomes[a.outcome].finish_s = clock;
                outcomes[a.outcome].latency_s =
                    clock - outcomes[a.outcome].request.arrival_s;
            } else {
                active[keep++] = a;
            }
        }
        active.resize(keep);
    }

    fleet.requests = static_cast<long>(n);
    fleet.makespan_s = clock - t0;
    fleet.tokens_per_s =
        fleet.makespan_s > 0.0
            ? static_cast<double>(fleet.tokens) / fleet.makespan_s
            : 0.0;

    std::vector<double> latencies, queues;
    latencies.reserve(n);
    queues.reserve(n);
    for (const auto &o : outcomes) {
        latencies.push_back(o.latency_s);
        queues.push_back(o.queue_s);
        fleet.oplog.merge(o.result.stats.oplog);
    }
    fleet.mean_latency_s = metrics::mean(latencies);
    fleet.p50_latency_s = metrics::percentile(latencies, 50.0);
    fleet.p99_latency_s = metrics::percentile(latencies, 99.0);
    fleet.mean_queue_s = metrics::mean(queues);
    fleet.energy_per_token_j =
        fleet.tokens > 0
            ? fleet.energy_j / static_cast<double>(fleet.tokens)
            : 0.0;
    fleet.avg_power_w = fleet.makespan_s > 0.0
                            ? fleet.energy_j / fleet.makespan_s
                            : 0.0;
    fleet.mean_batch_occupancy =
        fleet.iterations > 0
            ? occupancy / static_cast<double>(fleet.iterations)
            : 0.0;
    return fleet;
}

} // namespace specee::serve
