#include "serve/batch_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "hw/memory_tracker.hh"
#include "metrics/stats.hh"
#include "model/paged_kv.hh"
#include "util/logging.hh"

namespace specee::serve {

bool
isSharedClass(hw::OpClass cls)
{
    return hw::isBatchAmortized(cls);
}

BatchScheduler::BatchScheduler(const SchedulerOptions &opts) : opts_(opts)
{
    specee_assert(opts.max_batch >= 1, "max_batch must be >= 1, got %d",
                  opts.max_batch);
    specee_assert(opts.kv_budget_blocks >= 0,
                  "kv_budget_blocks must be >= 0, got %d",
                  opts.kv_budget_blocks);
    specee_assert(opts.kv_watermark >= 0.0 && opts.kv_watermark <= 1.0,
                  "kv_watermark must be in [0, 1], got %f",
                  opts.kv_watermark);
    specee_assert(opts.prefix_cache.capacity_blocks >= 0,
                  "prefix_cache.capacity_blocks must be >= 0, got %d",
                  opts.prefix_cache.capacity_blocks);
    specee_assert(opts.max_inflight_per_consumer >= 0,
                  "max_inflight_per_consumer must be >= 0, got %d",
                  opts.max_inflight_per_consumer);
    specee_assert(opts.max_admissions_per_iteration >= 0,
                  "max_admissions_per_iteration must be >= 0, got %d",
                  opts.max_admissions_per_iteration);
    specee_assert(opts.timeline.window_s >= 0.0,
                  "timeline.window_s must be >= 0, got %f",
                  opts.timeline.window_s);
    specee_assert(opts.topology.devices >= 1,
                  "topology.devices must be >= 1, got %d",
                  opts.topology.devices);
    specee_assert(opts.topology.prefill_devices >= 0 &&
                      opts.topology.prefill_devices <
                          opts.topology.devices,
                  "topology.prefill_devices must be in [0, devices), "
                  "got %d of %d",
                  opts.topology.prefill_devices, opts.topology.devices);
    specee_assert(opts.topology.prefill_devices == 0 ||
                      opts.prefill.chunk_tokens > 0,
                  "disaggregated prefill devices need chunked prefill "
                  "(prefill.chunk_tokens > 0)");
    PrefillPlanner(opts.prefill); // validates the prefill knobs
    // Validate the controller's arm sets eagerly (fail fast at
    // construction, not at the first decision epoch). The exit
    // defaults here are placeholders — arm validation never reads
    // the defaults.
    AdaptiveController(opts.controller,
                       ControllerKnobs{opts.prefill.chunk_tokens,
                                       opts.kv_watermark,
                                       opts.max_admissions_per_iteration,
                                       0.5f, 0.5f});
}

namespace {

/** One request moving through the waiting queue / decode slots. */
struct Entry
{
    Request req;
    workload::Workload w; ///< built once, survives preemption
    size_t outcome = 0;   ///< index into `outcomes`

    std::unique_ptr<engines::DecodeSession> sess;
    size_t engine = 0; ///< physical worker executing the session
    size_t device = 0; ///< logical topology device pricing it

    /** Disaggregated-prefill progress (prefill-device entries). */
    bool pf_done = false;   ///< prompt fully ingested on the device
    double pf_done_s = 0.0; ///< fleet clock when ingestion completes

    /** In-flight DMA state (overlap) / pending handoff price. */
    double xfer_ready_s = 0.0; ///< in-flight transfer lands (clock)
    double xfer_bytes = 0.0;   ///< true-dims bytes riding the link
    double handoff_s = 0.0;    ///< serialized handoff price (overlap off)

    double first_admit_s = -1.0;
    double first_token_s = -1.0;
    double last_token_s = 0.0;
    double itl_sum_s = 0.0;
    double itl_max_s = 0.0; ///< worst delivered gap (SLO judging)
    long itl_gaps = 0;
    size_t streamed = 0; ///< tokens already delivered downstream
    int preemptions = 0;

    double prefill_ready_s = -1.0; ///< prompt fully ingested (clock)
    int chunks = 0;  ///< prefill chunks of the current run
    int granted = 0; ///< prompt tokens granted this iteration
    int swaps = 0;   ///< times swapped to the host pool
    bool cancel = false; ///< consumer returned false from on_token

    /** Derived true-dims prompt (shared specs under the cache). */
    std::vector<int> true_toks;
    int cached = 0; ///< cached tokens adopted by the current run
    int sim_adopted = 0; ///< sim KV rows shared with the cache
    bool cache_inserted = false; ///< this run's prompt is in the tree

    engines::StepCost cost; ///< most recent iteration's step cost
};

} // namespace

FleetStats
BatchScheduler::run(const engines::Pipeline &pipe,
                    std::vector<engines::Engine *> engines,
                    std::vector<Request> requests,
                    std::vector<RequestOutcome> &outcomes,
                    const TokenCallback &on_token) const
{
    outcomes.clear();
    FleetStats fleet;
    fleet.rejected = 0;
    if (requests.empty())
        return fleet;
    specee_assert(!engines.empty(), "scheduler needs >= 1 engine");
    specee_assert(std::is_sorted(requests.begin(), requests.end(),
                                 [](const Request &a, const Request &b) {
                                     if (a.arrival_s != b.arrival_s)
                                         return a.arrival_s < b.arrival_s;
                                     return a.id < b.id;
                                 }),
                  "requests must be sorted by (arrival, id)");

    const engines::EngineConfig &ecfg = engines.front()->config();
    const model::ModelConfig &mcfg = engines.front()->modelConfig();
    const size_t slots = static_cast<size_t>(opts_.max_batch);

    // The fleet's pipeline shape. Workers must shard identically —
    // stage-split pricing and backfill read one stage graph, and a
    // heterogeneous fleet would make results depend on which worker
    // a session landed on (breaking worker-count determinism).
    const model::StageGraph &sg = engines.front()->stageGraph();
    const int n_stages = sg.nStages();
    for (const auto *e : engines) {
        specee_assert(e->stageGraph().nStages() == n_stages &&
                          e->tpDegree() == engines.front()->tpDegree(),
                      "all worker engines must share one tp x pp "
                      "sharding");
    }
    const bool staged = n_stages > 1;
    fleet.n_stages = n_stages;

    // Swap preemption needs a host link. Pure swap mode without one
    // is a configuration error (fail fast, not mid-eviction); auto
    // degrades to recompute-only on such platforms.
    const bool has_swap_link =
        engines.front()->platform().swap_bw_gbs > 0.0;
    specee_assert(opts_.preempt_mode != PreemptMode::Swap ||
                      has_swap_link,
                  "preempt_mode = swap on platform %s, which has no "
                  "host link (swap_bw_gbs = 0)",
                  engines.front()->platform().name.c_str());

    // Fleet topology: logical devices the pricing spreads over —
    // independent of the physical worker count, so determinism
    // across workers is preserved. Decode devices are
    // [0, n_decode_dev); prefill devices (disaggregation) are the
    // tail [n_decode_dev, n_devices). A disaggregated fleet needs a
    // peer link to stream finished prompts' KV over (fail fast, not
    // at the first handoff).
    const TopologyOptions &topo = opts_.topology;
    const int n_devices = topo.devices;
    const int n_prefill_dev = topo.prefill_devices;
    const int n_decode_dev = n_devices - n_prefill_dev;
    const bool disagg = n_prefill_dev > 0;
    const bool overlap = topo.overlap_transfers;
    specee_assert(!disagg ||
                      engines.front()->platform().interconnect_gbs > 0.0,
                  "disaggregated prefill/decode on platform %s, which "
                  "has no peer link (interconnect_gbs = 0)",
                  engines.front()->platform().name.c_str());
    fleet.n_devices = n_devices;
    fleet.n_prefill_devices = n_prefill_dev;
    // Per-device DMA channel timelines (host link, peer link). Only
    // consulted while overlap_transfers is on.
    hw::TransferEngine xfer(n_devices);
    // Busy-until of each prefill device's decoupled compute timeline.
    std::vector<double> pf_free_at(static_cast<size_t>(
                                       std::max(n_prefill_dev, 1)),
                                   0.0);

    // One shared physical KV pool per worker engine, sized so a full
    // decode batch of maximum-context sequences can never physically
    // exhaust it even if every session lands on one engine — the
    // *budget* (policy) is enforced fleet-wide by the scheduler
    // against real allocator occupancy, the pool (mechanism) just
    // backs the block tables.
    const int per_seq_blocks =
        mcfg.n_layers * (mcfg.context_len / model::kKvBlockSize + 2);
    // Prefix-cache headroom: the cache may hold up to its capacity
    // in blocks that no live session references, plus one prompt's
    // worth of transient overshoot before the post-insert trim, plus
    // copy-on-write forks. Sized into the pool so the third
    // residency tier can never physically starve admissions.
    const bool cache_on = opts_.prefix_cache.enabled;
    const int cache_capacity =
        cache_on ? (opts_.prefix_cache.capacity_blocks > 0
                        ? opts_.prefix_cache.capacity_blocks
                        : per_seq_blocks)
                 : 0;
    // Disaggregation holds sessions outside the decode slots too:
    // up to one ingesting prompt per prefill device plus a bounded
    // handoff queue (prefill admission stops once prefill-side
    // entries reach slots + prefill devices), so the pool backs the
    // worst case physically and the fleet budget stays pure policy.
    const int pool_slots =
        static_cast<int>(slots) +
        (disagg ? static_cast<int>(slots) + n_prefill_dev : 0);
    const int pool_blocks =
        pool_slots * per_seq_blocks +
        (cache_on ? cache_capacity + per_seq_blocks : 0);
    std::vector<std::shared_ptr<model::PagedKvCache>> pools;
    pools.reserve(engines.size());
    for (size_t e = 0; e < engines.size(); ++e) {
        pools.push_back(std::make_shared<model::PagedKvCache>(
            mcfg.n_layers, pool_blocks, mcfg.sim.hidden));
    }
    std::optional<PrefixCache> cache;
    if (cache_on)
        cache.emplace(mcfg.n_layers, pools);
    uint64_t cache_stamp = 0; ///< fleet-global LRU clock

    // Live prefill knobs: the adaptive controller may retune the
    // chunk size at epoch boundaries (rebuilding the planner), but
    // never toggles chunking itself — `chunked` is structural and
    // fixed for the whole run.
    PrefillOptions pf_opts = opts_.prefill;
    PrefillPlanner planner(pf_opts);
    const bool chunked = planner.enabled();

    // Worst-case block growth of one session in one iteration: every
    // committed token may open a fresh block in every layer; a
    // prefill chunk can append up to the whole sim prefix.
    const int tokens_per_step =
        ecfg.spec_decode ? ecfg.tree.depth() + 1 : 1;
    int iter_growth = mcfg.n_layers * tokens_per_step;
    // (The chunked growth reserve is finalized below, once the
    // workloads exist: shared prompts can carry sim prefixes longer
    // than kSimPromptLen.)

    // Fleet memory at TRUE dims: weights/draft/predictors once,
    // per-session KV and activations summed. Same deployment model
    // as the per-request peak_mem_gb (Engine::finalizeRun).
    const hw::MemoryTracker mem = engines.front()->makeMemoryTracker();

    const size_t n = requests.size();
    outcomes.resize(n);

    std::deque<Entry> waiting;
    for (size_t i = 0; i < n; ++i) {
        Entry e;
        // buildPromptWorkload reconciles the prompt-identity knobs:
        // an unshared spec reproduces the legacy makeWorkload call
        // bit-identically; a shared spec derives its true tokens and
        // the stride-derived sim prompt the cache can share.
        e.w = buildPromptWorkload(pipe, requests[i],
                                  ecfg.q4Calibrated());
        if (cache_on && requests[i].prompt.shared())
            e.true_toks = resolvePromptTokens(requests[i].prompt);
        e.req = std::move(requests[i]);
        e.outcome = i;
        outcomes[i].request = e.req;
        waiting.push_back(std::move(e));
    }

    if (chunked) {
        // A prefill chunk can append up to the whole sim prefix in
        // one iteration. Legacy prompts all run kSimPromptLen sim
        // rows (so this reduces to the pre-PromptSpec constant);
        // shared prompts derive one row per kPromptSimStride true
        // tokens and can be longer.
        int max_rows = workload::kSimPromptLen;
        for (const auto &e : waiting) {
            max_rows = std::max(
                max_rows,
                static_cast<int>(e.w.instances.front().prompt.size()) -
                    1);
        }
        iter_growth = std::max(
            iter_growth,
            mcfg.n_layers *
                ((max_rows + model::kKvBlockSize - 1) /
                     model::kKvBlockSize +
                 1));
    }
    // A write into a shared cached block forks a copy-on-write
    // duplicate: one extra block per layer of worst-case growth.
    if (cache_on)
        iter_growth += mcfg.n_layers;

    const double t0 = waiting.front().req.arrival_s;
    double clock = t0;
    double occupancy = 0.0;
    double itl_sum = 0.0;
    long itl_gaps = 0;
    std::vector<double> itl_samples; ///< every delivered gap
    uint64_t admit_seq = 0;
    // Stages the previous iteration's early exits left idle — the
    // backfill planner's bubble estimate. Reading LAST iteration's
    // occupancy keeps the plan causal (it depends only on work
    // already priced), so results stay bit-identical across worker
    // counts; the one-iteration lag is the micro-batch pipeline.
    int free_stages_prev = 0;
    std::vector<Entry> active;
    active.reserve(slots);
    // Sessions preempted by swap-to-host: frozen with their KV in the
    // pool's host side. Resumes compete with fresh admissions
    // tier-first once pressure clears (see the admission loop).
    std::deque<Entry> swappedQ;
    // Disaggregation: sessions ingesting their prompt on a prefill
    // device, and finished prompts whose KV is streaming (or queued
    // to stream) to a decode device.
    std::vector<Entry> prefilling;
    std::deque<Entry> handoffQ;
    // Round-robin decode-device assignment, like admit_seq for
    // engines; inert at one device.
    uint64_t dev_seq = 0;

    // --- observability: event trace + metrics timeline -------------
    // Both record against the MODELED clock and never advance it or
    // touch any scheduling state, so emissions and modeled costs are
    // bit-identical whether they are on or off. Worker threads write
    // step spans into their own recorder shard (lock-free by
    // exclusivity); everything decided on this thread goes to the
    // control shard with a monotonic seq stamp, and the merge is
    // deterministic across worker counts.
    const bool tracing = opts_.trace.enabled;
    obs::TraceRecorder rec(engines.size(), tracing);
    uint64_t trace_seq = 0;
    obs::Timeline timeline(opts_.timeline, t0, mcfg.n_layers, n_stages);
    long slo_tokens = 0; ///< tokens delivered by attaining requests

    // --- adaptive control plane ------------------------------------
    // The controller starts from the static knob values and runs on
    // the modeled clock: each epoch it reads its PRIVATE windowed
    // timeline (epoch-width windows, independent of the user-facing
    // one) and Thompson-samples the next knob setting. All live knob
    // state lives in the locals below; with the controller off they
    // hold the static values forever and every path is bit-identical
    // to the controller-less scheduler.
    AdaptiveController ctl(
        opts_.controller,
        ControllerKnobs{opts_.prefill.chunk_tokens, opts_.kv_watermark,
                        opts_.max_admissions_per_iteration,
                        ecfg.exit_threshold, ecfg.exit_threshold});
    const bool controlled = ctl.enabled();
    obs::TimelineOptions ctl_tl_opts;
    if (controlled)
        ctl_tl_opts.window_s = ctl.epochSeconds();
    obs::Timeline ctl_tl(ctl_tl_opts, t0, mcfg.n_layers, n_stages);
    size_t ctl_epoch = 0; ///< next decision window to close
    // SLO verdicts known SO FAR: the controller's reward
    // attribution. Written at retirement (drop / cancel / complete)
    // and eagerly the moment an in-flight request blows a TTFT or
    // ITL bound — a breach is irrevocable, so waiting for retirement
    // would keep crediting doomed requests and bias window rewards
    // optimistic. In-flight requests otherwise default to attained —
    // they have not failed anything yet.
    std::unordered_map<uint64_t, bool> online_attained;
    double kv_watermark = opts_.kv_watermark;
    int admit_cap = opts_.max_admissions_per_iteration;
    const auto decision = [&](obs::TraceDecision d, uint64_t req_id,
                              int d_tokens = 0) {
        if (!tracing)
            return;
        obs::TraceEvent ev;
        ev.kind = obs::TraceKind::Decision;
        ev.t0 = ev.t1 = clock;
        ev.decision = d;
        ev.request = req_id;
        ev.tokens = d_tokens;
        ev.seq = trace_seq++;
        rec.control().emit(std::move(ev));
    };
    // One DMA busy span [a, b) on `device`'s channel — fed to both
    // the trace and the timeline's channel-utilization accumulator.
    const auto transferSpan = [&](double a, double b, size_t device,
                                  hw::DmaChannel ch, uint64_t req_id) {
        timeline.recordTransfer(a, b);
        if (!tracing)
            return;
        obs::TraceEvent ev;
        ev.kind = obs::TraceKind::Transfer;
        ev.t0 = a;
        ev.t1 = b;
        ev.device = static_cast<int>(device);
        ev.channel = static_cast<int>(ch);
        ev.request = req_id;
        ev.seq = trace_seq++;
        rec.control().emit(std::move(ev));
    };
    // Judge the retiring request against its tier's objectives.
    const auto judgeSlo = [&](const Entry &e, RequestOutcome &o,
                              bool completed) {
        const obs::SloSpec &spec =
            opts_.slo.tier(static_cast<int>(e.req.priority));
        o.slo = obs::judge(spec, completed, o.ttft_s, o.max_itl_s,
                           o.latency_s);
    };

    const auto expired = [&](const Request &r) {
        return r.deadline_s > 0.0 && clock > r.deadline_s;
    };
    const auto finishTimeline = [&](Entry &e, RequestOutcome &o) {
        o.finish_s = clock;
        o.latency_s = clock - e.req.arrival_s;
        o.admit_s = e.first_admit_s >= 0.0 ? e.first_admit_s : clock;
        o.queue_s = std::max(0.0, o.admit_s - e.req.arrival_s);
        o.prefill_s = chunked && e.prefill_ready_s >= 0.0
                          ? std::max(0.0, e.prefill_ready_s - o.admit_s)
                          : 0.0;
        o.prefill_chunks = e.chunks;
        o.preemptions = e.preemptions;
        o.swaps = e.swaps;
        o.cached_tokens = e.cached;
        o.max_itl_s = e.itl_max_s;
    };
    const auto drop = [&](Entry &e) {
        if (e.sess && e.sess->awaitingTransfer()) {
            // The modeled DMA still completes on its channel; settle
            // it so the byte-conservation census stays exact before
            // the blocks free with the entry.
            e.sess->endTransfer();
            fleet.transfer_bytes_received += e.xfer_bytes;
        }
        RequestOutcome &o = outcomes[e.outcome];
        o.dropped = true;
        finishTimeline(e, o);
        // An unfinished request fails every configured objective.
        judgeSlo(e, o, false);
        if (controlled)
            online_attained[e.req.id] = false;
        decision(obs::TraceDecision::Drop, e.req.id);
        ++fleet.dropped;
        // Gaps already delivered count toward fleet ITL (they are in
        // itl_samples too, keeping mean and percentiles consistent).
        itl_sum += e.itl_sum_s;
        itl_gaps += e.itl_gaps;
    };
    const auto fleetBlocks = [&] {
        // With the cache on, budget occupancy is the real allocator
        // state: distinct physical blocks, counting a block shared
        // by several sessions (or by a session and the cache) once.
        // Sharing only happens within a pinned engine, so the sum is
        // identical across worker counts. Cache-off keeps the legacy
        // per-session sum bit-identically.
        if (cache_on) {
            long b = 0;
            for (const auto &p : pools)
                b += p->blocksInUse();
            return b;
        }
        long b = 0;
        for (const auto &a : active)
            b += a.sess->kvBlocks();
        for (const auto &p : prefilling)
            b += p.sess->kvBlocks();
        for (const auto &h : handoffQ)
            b += h.sess->kvBlocks();
        return b;
    };
    // Earliest STRICTLY FUTURE modeled event: an arrival, a prefill
    // device finishing its chunk (or a finished prompt's completion
    // time), or an in-flight DMA landing. Already-due events were
    // handled at this boundary, so only t > clock counts; infinity
    // means nothing is pending.
    const auto nextEvent = [&] {
        double next = std::numeric_limits<double>::infinity();
        const auto consider = [&](double t) {
            if (t > clock)
                next = std::min(next, t);
        };
        if (!waiting.empty())
            consider(waiting.front().req.arrival_s);
        for (const auto &p : prefilling) {
            const size_t d = p.device - static_cast<size_t>(n_decode_dev);
            consider(p.pf_done ? p.pf_done_s : pf_free_at[d]);
        }
        const auto landing = [&](const Entry &e) {
            if (e.sess && e.sess->awaitingTransfer())
                consider(e.xfer_ready_s);
        };
        for (const auto &h : handoffQ)
            landing(h);
        for (const auto &s : swappedQ)
            landing(s);
        for (const auto &a : active)
            landing(a);
        return next;
    };
    // Cache the finished prompt's KV at the prefill-done boundary —
    // the one moment every layer holds exactly the prompt's sim rows.
    // Idempotent per run; a recompute preemption clears the flag so
    // the re-run re-inserts (its fresh blocks replace freed ones).
    const auto cacheInsert = [&](Entry &e) {
        if (!cache_on || e.true_toks.empty() || e.cache_inserted)
            return;
        e.cache_inserted = true;
        cache->insert(e.true_toks, e.engine, e.sess->kvSeqId(),
                      cache_stamp++);
    };
    // Device KV of the candidate's FULL working set (sim dims): the
    // whole prompt — not the first chunk's share chunked admission
    // reserves — plus every scripted decode position. This is what
    // the prefill-aware watermark insists fits under the high-water
    // mark before a long prompt is admitted at all. `sim_cached` sim
    // rows already resident in the prefix cache discount the charge:
    // adoption shares those blocks instead of allocating them, so
    // counting them again would double-charge every cache hit and
    // starve admission under tight watermarks. Only WHOLE cached
    // blocks discount — the boundary block copy-on-write forks on
    // the first divergent write, so its copy still charges.
    const auto fullRequestBlocks = [&](const Entry &e, int sim_cached) {
        const auto &inst = e.w.instances.front();
        const int positions = static_cast<int>(inst.prompt.size()) +
                              static_cast<int>(inst.steps.size());
        int blocks = (positions + model::kKvBlockSize - 1) /
                     model::kKvBlockSize;
        blocks -= std::min(blocks, sim_cached / model::kKvBlockSize);
        return mcfg.n_layers * blocks;
    };
    // The candidate's would-be adoption, probed WITHOUT stamping the
    // LRU or assembling a block table (pure read): what admission
    // will actually share if the gate passes.
    const auto peekCached = [&](const Entry &e) {
        if (!cache_on || e.true_toks.empty())
            return 0;
        const size_t eng = static_cast<size_t>(
            e.req.prompt.rootTemplate() % engines.size());
        return cache->peekSimMatched(e.true_toks, eng);
    };
    // KV an admission must be able to hold up front: the whole
    // (sim-dims) prompt when prefill is atomic, only the first
    // chunk's share of the prefix when chunked — gradual ingestion
    // is what lets short requests slip in under KV pressure.
    const auto admitBlocks = [&](const Entry &e) {
        const int prompt =
            static_cast<int>(e.w.instances.front().prompt.size());
        int sim = prompt;
        if (chunked) {
            const int total = std::max(e.w.true_prompt_len, 1);
            const int chunk = std::min(pf_opts.chunk_tokens, total);
            // A single-chunk prompt reserves exactly what the atomic
            // path would; smaller chunks reserve the first chunk's
            // proportional share of the sim prefix.
            if (chunk < total) {
                sim = std::max(
                    1, static_cast<int>(static_cast<long>(prompt - 1) *
                                        chunk / total));
            }
        }
        return mcfg.n_layers *
               ((sim + model::kKvBlockSize - 1) /
                model::kKvBlockSize);
    };

    while (!waiting.empty() || !active.empty() || !swappedQ.empty() ||
           !prefilling.empty() || !handoffQ.empty()) {
        // --- adaptive control plane: close due decision epochs -----
        // Every epoch window the modeled clock has fully passed is
        // reduced (covered-span rates, verdicts known so far) and
        // fed to the controller; sampled knob changes land HERE, at
        // an iteration boundary, before any admission or planning
        // below reads them.
        if (controlled) {
            const double ep_w = ctl.epochSeconds();
            while (t0 + static_cast<double>(ctl_epoch + 1) * ep_w <=
                   clock) {
                const obs::TimelineWindow win = ctl_tl.reduce(
                    ctl_epoch, clock, [&](uint64_t id) {
                        const auto it = online_attained.find(id);
                        return it == online_attained.end() ||
                               it->second;
                    });
                const int changed = ctl.decide(clock, win);
                ++ctl_epoch;
                if (changed == 0)
                    continue;
                decision(obs::TraceDecision::KnobChange, 0, changed);
                const ControllerKnobs &k = ctl.knobs();
                kv_watermark = k.kv_watermark;
                admit_cap = k.max_admissions_per_iteration;
                if (chunked && k.chunk_tokens != pf_opts.chunk_tokens) {
                    pf_opts.chunk_tokens = k.chunk_tokens;
                    planner = PrefillPlanner(pf_opts);
                }
                // Per-tier speculation aggressiveness applies to
                // every LIVE session forward in time (frozen swapped
                // sessions included — they resume under the current
                // policy).
                const auto retune = [&](Entry &e) {
                    if (!e.sess)
                        return;
                    e.sess->setExitThreshold(
                        e.req.priority == Priority::Interactive
                            ? k.interactive_exit_threshold
                            : k.batch_exit_threshold);
                };
                for (auto &a : active)
                    retune(a);
                for (auto &p : prefilling)
                    retune(p);
                for (auto &h : handoffQ)
                    retune(h);
                for (auto &s : swappedQ)
                    retune(s);
            }
        }

        // --- iteration boundary: settle landed DMAs first ----------
        // A transfer whose channel time has passed unpins its
        // session's blocks; admission and stepping below then see
        // the settled state.
        if (overlap) {
            const auto settleIfLanded = [&](Entry &e) {
                if (e.sess && e.sess->awaitingTransfer() &&
                    clock >= e.xfer_ready_s) {
                    e.sess->endTransfer();
                    fleet.transfer_bytes_received += e.xfer_bytes;
                }
            };
            for (auto &a : active)
                settleIfLanded(a);
            for (auto &s : swappedQ)
                settleIfLanded(s);
            for (auto &h : handoffQ)
                settleIfLanded(h);
        }

        // --- iteration boundary: deadlines, admission, preemption --
        for (size_t i = 0; i < active.size();) {
            if (expired(active[i].req)) {
                drop(active[i]);
                active.erase(active.begin() +
                             static_cast<long>(i)); // KV frees here
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < waiting.size();) {
            if (expired(waiting[i].req)) {
                drop(waiting[i]);
                waiting.erase(waiting.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < swappedQ.size();) {
            if (expired(swappedQ[i].req)) {
                drop(swappedQ[i]); // host-pool KV frees with the entry
                swappedQ.erase(swappedQ.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < prefilling.size();) {
            if (expired(prefilling[i].req)) {
                // The prefill device stays busy until its in-flight
                // chunk's modeled end — dead work, like a dropped
                // decode's last iteration.
                drop(prefilling[i]);
                prefilling.erase(prefilling.begin() +
                                 static_cast<long>(i));
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < handoffQ.size();) {
            if (expired(handoffQ[i].req)) {
                drop(handoffQ[i]); // settles any in-flight handoff
                handoffQ.erase(handoffQ.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }

        // Admission: swap-ins and fresh admissions compete for free
        // slots tier-first (interactive before batch, everywhere),
        // FIFO within each tier; at equal tier a swapped session
        // wins — it is older admitted work holding host memory and
        // prior progress. A batch-tier session frozen in the host
        // pool therefore never delays an interactive prompt, exactly
        // like a recompute victim waiting in the queue. An empty
        // fleet always takes a candidate (progress guarantee: the
        // budget gates below only apply alongside active peers).
        // Per-consumer backpressure: pass over candidates whose
        // consumer already decodes max_inflight_per_consumer
        // sessions. Saturation needs >= 1 active session, so an
        // empty fleet is never deferred and progress holds.
        const auto saturated = [&](const Request &r) {
            if (opts_.max_inflight_per_consumer <= 0)
                return false;
            int c = 0;
            for (const auto &a : active)
                if (a.req.consumer == r.consumer)
                    ++c;
            return c >= opts_.max_inflight_per_consumer;
        };
        // Disaggregation: finished prompts whose prefill-device
        // timeline has passed hand their KV off toward the decode
        // fleet — before admission, so a handoff that just became
        // ready can take a decode slot at this very boundary and its
        // freed prefill device can take the next prompt.
        if (disagg) {
            for (size_t i = 0; i < prefilling.size();) {
                Entry &p = prefilling[i];
                if (!p.pf_done || clock < p.pf_done_s) {
                    ++i;
                    continue;
                }
                Entry e = std::move(p);
                prefilling.erase(prefilling.begin() +
                                 static_cast<long>(i));
                if (e.prefill_ready_s < 0.0)
                    e.prefill_ready_s = e.pf_done_s;
                cacheInsert(e);
                const double h = e.sess->chargeHandoff();
                e.xfer_bytes = mem.kvBytes(e.sess->modeledPositions());
                ++fleet.handoffs;
                decision(obs::TraceDecision::Handoff, e.req.id);
                fleet.handoff_gb +=
                    hw::MemoryTracker::toGiB(e.xfer_bytes);
                fleet.transfer_bytes_sent += e.xfer_bytes;
                if (overlap) {
                    // Stream over the prefill device's peer channel,
                    // concurrent with its next prompt's chunks and
                    // with the decode batch.
                    const double busy_from =
                        std::max(clock,
                                 xfer.freeAt(static_cast<int>(e.device),
                                             hw::DmaChannel::Peer));
                    e.xfer_ready_s =
                        xfer.submit(static_cast<int>(e.device),
                                    hw::DmaChannel::Peer, clock, h);
                    transferSpan(busy_from, e.xfer_ready_s, e.device,
                                 hw::DmaChannel::Peer, e.req.id);
                    e.sess->beginTransfer();
                    ++fleet.transfers_overlapped;
                } else {
                    e.handoff_s = h;
                }
                handoffQ.push_back(std::move(e));
            }
        }

        bool deferred = false;
        // Fresh admissions this boundary (admit_cap gates them;
        // swap-ins and handoff completions resume work already
        // admitted and are never capped, so progress always holds).
        int fresh_admits = 0;
        // Restore a swapped candidate into a decode slot. Overlap
        // off: the host-link DMA serializes on the fleet clock, as
        // ever. Overlap on: the functional restore happens now (KV
        // content is a pure function of the tokens, so eager data
        // movement cannot change emissions), the DMA is submitted on
        // the session's device host channel, and the session holds
        // its slot at zero cost until the landing.
        const auto swapInAdmit = [&](Entry &&e) {
            const double h = e.sess->swapIn();
            ++fleet.swaps_in;
            decision(obs::TraceDecision::Resume, e.req.id);
            e.xfer_bytes = mem.kvBytes(e.sess->modeledPositions());
            fleet.transfer_bytes_sent += e.xfer_bytes;
            if (overlap) {
                const double busy_from =
                    std::max(clock,
                             xfer.freeAt(static_cast<int>(e.device),
                                         hw::DmaChannel::Host));
                e.xfer_ready_s =
                    xfer.submit(static_cast<int>(e.device),
                                hw::DmaChannel::Host, clock, h);
                transferSpan(busy_from, e.xfer_ready_s, e.device,
                             hw::DmaChannel::Host, e.req.id);
                e.sess->beginTransfer();
                ++fleet.transfers_overlapped;
            } else {
                transferSpan(clock, clock + h, e.device,
                             hw::DmaChannel::Host, e.req.id);
                clock += h;
                fleet.transfer_bytes_received += e.xfer_bytes;
            }
            active.push_back(std::move(e));
        };
        while (!disagg && active.size() < slots) {
            size_t sw = swappedQ.size();
            size_t sw_any = swappedQ.size();
            for (size_t i = 0; i < swappedQ.size(); ++i) {
                if (swappedQ[i].sess->awaitingTransfer())
                    continue; // out-transfer still on the link
                if (saturated(swappedQ[i].req)) {
                    deferred = true;
                    continue;
                }
                if (swappedQ[i].req.priority == Priority::Interactive) {
                    sw = i;
                    break;
                }
                if (sw_any == swappedQ.size())
                    sw_any = i;
            }
            if (sw == swappedQ.size())
                sw = sw_any;
            size_t cand = waiting.size();
            if (admit_cap <= 0 || fresh_admits < admit_cap) {
                for (size_t i = 0; i < waiting.size(); ++i) {
                    // Future arrivals are a contiguous sorted tail
                    // (victims re-enter at the front, already
                    // arrived).
                    if (waiting[i].req.arrival_s > clock)
                        break;
                    if (saturated(waiting[i].req)) {
                        deferred = true;
                        continue;
                    }
                    if (waiting[i].req.priority ==
                        Priority::Interactive) {
                        cand = i;
                        break;
                    }
                    if (cand == waiting.size())
                        cand = i;
                }
            }
            const bool have_sw = sw < swappedQ.size();
            const bool have_wa = cand < waiting.size();
            if (!have_sw && !have_wa)
                break;
            const bool pick_sw =
                have_sw &&
                (!have_wa ||
                 static_cast<int>(swappedQ[sw].req.priority) <=
                     static_cast<int>(waiting[cand].req.priority));
            if (pick_sw) {
                Entry &head = swappedQ[sw];
                if (opts_.kv_budget_blocks > 0 && !active.empty() &&
                    fleetBlocks() + head.sess->hostBlocks() +
                            iter_growth *
                                static_cast<long>(active.size() + 1) >
                        opts_.kv_budget_blocks)
                    break;
                Entry e = std::move(head);
                swappedQ.erase(swappedQ.begin() + static_cast<long>(sw));
                swapInAdmit(std::move(e));
                continue;
            }
            Entry &head = waiting[cand];
            if (opts_.kv_budget_blocks > 0 && !active.empty() &&
                fleetBlocks() + admitBlocks(head) +
                        iter_growth *
                            static_cast<long>(active.size() + 1) >
                    opts_.kv_budget_blocks)
                break;
            // Prefill-aware watermark: beyond the first-chunk
            // reservation above, the fleet's COMMITTED working set —
            // every active session's full prompt + decode KV (what
            // its blocks will grow to, not what it holds mid-chunk)
            // plus the candidate's, plus the scheduler's growth
            // reserve — must fit under the high-water mark.
            // Otherwise a long prompt admitted against today's
            // near-empty occupancy would chunk, grow, evict and
            // recompute in a loop under a tight budget.
            if (kv_watermark > 0.0 && opts_.kv_budget_blocks > 0 &&
                !active.empty()) {
                long committed =
                    fullRequestBlocks(head, peekCached(head));
                for (const auto &a : active)
                    committed += fullRequestBlocks(a, a.sim_adopted);
                if (static_cast<double>(
                        committed +
                        iter_growth *
                            static_cast<long>(active.size() + 1)) >
                    kv_watermark * opts_.kv_budget_blocks) {
                    ++fleet.watermark_rejections;
                    decision(obs::TraceDecision::WatermarkReject,
                             head.req.id);
                    break;
                }
            }
            Entry e = std::move(head);
            waiting.erase(waiting.begin() + static_cast<long>(cand));
            // Template-affinity pinning: requests sharing a root
            // template land on one engine, so their physical blocks
            // live in one pool and can actually be shared. Unshared
            // requests keep the legacy round-robin. Cache decisions
            // stay deterministic across worker counts because a
            // template's tree is the same tree wherever it lives.
            if (cache_on && !e.true_toks.empty()) {
                e.engine = static_cast<size_t>(
                    e.req.prompt.rootTemplate() % engines.size());
            } else {
                e.engine = admit_seq++ % engines.size();
            }
            // Logical pricing device, independent of the physical
            // worker pin above; inert at one device.
            e.device = static_cast<size_t>(
                dev_seq++ % static_cast<uint64_t>(n_decode_dev));
            e.sess = engines[e.engine]->makeSession(
                e.w, e.req.seed,
                std::make_unique<model::SequenceKv>(pools[e.engine]));
            e.cached = 0;
            e.sim_adopted = 0;
            if (cache_on && !e.true_toks.empty()) {
                const PrefixCache::Match m = cache->match(
                    e.true_toks, e.engine, cache_stamp++);
                if (m.sim_matched > 0) {
                    e.sess->adoptCachedPrefix(m.table, m.true_matched,
                                              m.sim_matched);
                    e.cached = m.true_matched;
                    e.sim_adopted = m.sim_matched;
                    ++fleet.prefix_hits;
                    fleet.cached_tokens += m.true_matched;
                    decision(obs::TraceDecision::CacheHit, e.req.id,
                             m.true_matched);
                }
            }
            if (controlled) {
                e.sess->setExitThreshold(
                    e.req.priority == Priority::Interactive
                        ? ctl.knobs().interactive_exit_threshold
                        : ctl.knobs().batch_exit_threshold);
            }
            if (!chunked) {
                // Atomic legacy prefill: free and instantaneous. A
                // full-prompt cache hit already completed it.
                if (!e.sess->prefillDone())
                    e.sess->prefill();
                e.prefill_ready_s = clock;
                cacheInsert(e);
            }
            if (e.first_admit_s < 0.0)
                e.first_admit_s = clock;
            ++fleet.admissions;
            ++fresh_admits;
            decision(obs::TraceDecision::Admit, e.req.id);
            active.push_back(std::move(e));
        }

        // Disaggregated decode admission: free decode slots are fed
        // by swap-ins and by finished prompts arriving over the peer
        // link — never by raw prompts, which ingest on the prefill
        // devices below. Tier-first everywhere; at equal tier a
        // swapped session wins (older admitted work, like the
        // unified rule).
        while (disagg && active.size() < slots) {
            size_t sw = swappedQ.size();
            size_t sw_any = swappedQ.size();
            for (size_t i = 0; i < swappedQ.size(); ++i) {
                if (swappedQ[i].sess->awaitingTransfer())
                    continue; // out-transfer still on the link
                if (saturated(swappedQ[i].req)) {
                    deferred = true;
                    continue;
                }
                if (swappedQ[i].req.priority == Priority::Interactive) {
                    sw = i;
                    break;
                }
                if (sw_any == swappedQ.size())
                    sw_any = i;
            }
            if (sw == swappedQ.size())
                sw = sw_any;
            size_t ho = handoffQ.size();
            size_t ho_any = handoffQ.size();
            for (size_t i = 0; i < handoffQ.size(); ++i) {
                if (handoffQ[i].sess->awaitingTransfer())
                    continue; // KV still streaming to the decode side
                if (saturated(handoffQ[i].req)) {
                    deferred = true;
                    continue;
                }
                if (handoffQ[i].req.priority == Priority::Interactive) {
                    ho = i;
                    break;
                }
                if (ho_any == handoffQ.size())
                    ho_any = i;
            }
            if (ho == handoffQ.size())
                ho = ho_any;
            const bool have_sw = sw < swappedQ.size();
            const bool have_ho = ho < handoffQ.size();
            if (!have_sw && !have_ho)
                break;
            const bool pick_sw =
                have_sw &&
                (!have_ho ||
                 static_cast<int>(swappedQ[sw].req.priority) <=
                     static_cast<int>(handoffQ[ho].req.priority));
            if (pick_sw) {
                Entry &head = swappedQ[sw];
                if (opts_.kv_budget_blocks > 0 && !active.empty() &&
                    fleetBlocks() + head.sess->hostBlocks() +
                            iter_growth *
                                static_cast<long>(active.size() + 1) >
                        opts_.kv_budget_blocks)
                    break;
                Entry e = std::move(head);
                swappedQ.erase(swappedQ.begin() + static_cast<long>(sw));
                swapInAdmit(std::move(e));
                continue;
            }
            // A handoff admission's blocks are already in
            // fleetBlocks() (they allocated at ingestion); only the
            // per-iteration growth reserve gates the slot.
            if (opts_.kv_budget_blocks > 0 && !active.empty() &&
                fleetBlocks() + iter_growth *
                                    static_cast<long>(active.size() + 1) >
                    opts_.kv_budget_blocks)
                break;
            Entry e = std::move(handoffQ[ho]);
            handoffQ.erase(handoffQ.begin() + static_cast<long>(ho));
            e.device = static_cast<size_t>(
                dev_seq++ % static_cast<uint64_t>(n_decode_dev));
            if (!overlap) {
                // Serialized handoff: the peer-link stream pays on
                // the fleet clock at the decode boundary, like the
                // serialized swap DMAs.
                transferSpan(clock, clock + e.handoff_s, e.device,
                             hw::DmaChannel::Peer, e.req.id);
                clock += e.handoff_s;
                fleet.transfer_bytes_received += e.xfer_bytes;
            }
            active.push_back(std::move(e));
        }

        // Disaggregated prefill admission: arrived requests start
        // chunked ingestion on a free prefill device. Bounded so the
        // prefill side (ingesting prompts + queued handoffs) never
        // outgrows the pool headroom sized above.
        while (disagg &&
               static_cast<int>(prefilling.size()) < n_prefill_dev &&
               prefilling.size() + handoffQ.size() <
                   slots + static_cast<size_t>(n_prefill_dev)) {
            if (admit_cap > 0 && fresh_admits >= admit_cap)
                break;
            size_t cand = waiting.size();
            for (size_t i = 0; i < waiting.size(); ++i) {
                if (waiting[i].req.arrival_s > clock)
                    break;
                if (saturated(waiting[i].req)) {
                    deferred = true;
                    continue;
                }
                if (waiting[i].req.priority == Priority::Interactive) {
                    cand = i;
                    break;
                }
                if (cand == waiting.size())
                    cand = i;
            }
            if (cand == waiting.size())
                break;
            Entry &head = waiting[cand];
            // Progress guarantee: with no session anywhere in the
            // fleet, admit unconditionally.
            const bool fleet_empty = active.empty() &&
                                     prefilling.empty() &&
                                     handoffQ.empty();
            const long n_sessions =
                static_cast<long>(active.size() + prefilling.size());
            if (opts_.kv_budget_blocks > 0 && !fleet_empty &&
                fleetBlocks() + admitBlocks(head) +
                        iter_growth * (n_sessions + 1) >
                    opts_.kv_budget_blocks)
                break;
            if (kv_watermark > 0.0 && opts_.kv_budget_blocks > 0 &&
                !fleet_empty) {
                long committed =
                    fullRequestBlocks(head, peekCached(head));
                for (const auto &a : active)
                    committed += fullRequestBlocks(a, a.sim_adopted);
                for (const auto &p : prefilling)
                    committed += fullRequestBlocks(p, p.sim_adopted);
                for (const auto &h : handoffQ)
                    committed += fullRequestBlocks(h, h.sim_adopted);
                if (static_cast<double>(
                        committed + iter_growth * (n_sessions + 1)) >
                    kv_watermark * opts_.kv_budget_blocks) {
                    ++fleet.watermark_rejections;
                    decision(obs::TraceDecision::WatermarkReject,
                             head.req.id);
                    break;
                }
            }
            Entry e = std::move(head);
            waiting.erase(waiting.begin() + static_cast<long>(cand));
            // First free prefill device (at most n_prefill_dev
            // entries ingest at once, so one always exists).
            int local = -1;
            for (int d = 0; d < n_prefill_dev && local < 0; ++d) {
                bool used = false;
                for (const auto &p : prefilling) {
                    if (p.device ==
                        static_cast<size_t>(n_decode_dev + d))
                        used = true;
                }
                if (!used)
                    local = d;
            }
            specee_assert(local >= 0, "no free prefill device");
            e.device = static_cast<size_t>(n_decode_dev + local);
            if (cache_on && !e.true_toks.empty()) {
                e.engine = static_cast<size_t>(
                    e.req.prompt.rootTemplate() % engines.size());
            } else {
                e.engine = admit_seq++ % engines.size();
            }
            e.sess = engines[e.engine]->makeSession(
                e.w, e.req.seed,
                std::make_unique<model::SequenceKv>(pools[e.engine]));
            e.cached = 0;
            e.sim_adopted = 0;
            if (cache_on && !e.true_toks.empty()) {
                const PrefixCache::Match m =
                    cache->match(e.true_toks, e.engine, cache_stamp++);
                if (m.sim_matched > 0) {
                    e.sess->adoptCachedPrefix(m.table, m.true_matched,
                                              m.sim_matched);
                    e.cached = m.true_matched;
                    e.sim_adopted = m.sim_matched;
                    ++fleet.prefix_hits;
                    fleet.cached_tokens += m.true_matched;
                    decision(obs::TraceDecision::CacheHit, e.req.id,
                             m.true_matched);
                }
            }
            if (controlled) {
                e.sess->setExitThreshold(
                    e.req.priority == Priority::Interactive
                        ? ctl.knobs().interactive_exit_threshold
                        : ctl.knobs().batch_exit_threshold);
            }
            if (e.first_admit_s < 0.0)
                e.first_admit_s = clock;
            ++fleet.admissions;
            ++fresh_admits;
            decision(obs::TraceDecision::Admit, e.req.id);
            e.pf_done = false;
            // A full-prompt cache hit skips the device entirely: the
            // prompt is ready now and only the handoff remains.
            if (e.sess->prefillDone()) {
                e.pf_done = true;
                e.pf_done_s = clock;
            }
            prefilling.push_back(std::move(e));
        }
        if (deferred) {
            ++fleet.backpressure_deferrals;
            // One instant per boundary, like the counter (several
            // candidates may have been passed over).
            decision(obs::TraceDecision::Defer, 0);
        }

        // --- disaggregated prefill devices run their own timelines -
        if (disagg) {
            // One chunk per free prefill device, on its decoupled
            // timeline: issued at this boundary, complete at clock +
            // chunk time. A device freed between boundaries waits for
            // the next one — conservative and causal, so results are
            // bit-identical across worker counts.
            for (auto &p : prefilling) {
                const size_t d =
                    p.device - static_cast<size_t>(n_decode_dev);
                if (p.pf_done || pf_free_at[d] > clock)
                    continue;
                const int remaining = p.sess->prefillRemaining();
                if (remaining > 0) {
                    const int chunk =
                        std::min(pf_opts.chunk_tokens, remaining);
                    const int consumed = p.sess->prefillChunk(chunk);
                    const auto &c = p.sess->lastStep();
                    const double dt_pf = c.shared_s + c.private_s;
                    fleet.energy_j += c.shared_j + c.private_j;
                    fleet.prefill_busy_s += dt_pf;
                    pf_free_at[d] = clock + dt_pf;
                    ++p.chunks;
                    ++fleet.prefill_chunks;
                    fleet.prefill_tokens += consumed;
                    if (tracing) {
                        // Chunk span on the prefill device's own
                        // decoupled timeline.
                        obs::TraceEvent ev;
                        ev.kind = obs::TraceKind::PrefillChunk;
                        ev.t0 = clock;
                        ev.t1 = pf_free_at[d];
                        ev.device = static_cast<int>(p.device);
                        ev.request = p.req.id;
                        ev.tokens = consumed;
                        ev.deepest_layer = c.deepest_layer;
                        ev.stages_used = c.stages_used;
                        ev.op_s = c.class_s;
                        ev.seq = trace_seq++;
                        rec.control().emit(std::move(ev));
                    }
                }
                if (p.sess->prefillDone()) {
                    p.pf_done = true;
                    p.pf_done_s = remaining > 0 ? pf_free_at[d] : clock;
                }
            }
        }

        if (active.empty()) {
            // Idle decode fleet: jump to the earliest future event —
            // the next arrival, a prefill device finishing, or an
            // in-flight DMA landing. (Anything already due was
            // admitted or settled above, so the event is genuinely
            // in the future; infinity means the fleet is drained.)
            const double next = nextEvent();
            if (!std::isfinite(next)) {
                specee_assert(waiting.empty() && prefilling.empty() &&
                                  handoffQ.empty() && swappedQ.empty(),
                              "idle fleet stalled with pending work");
                break;
            }
            clock = next;
            continue;
        }

        // KV pressure: evict sessions until the worst case of the
        // next iteration fits the fleet budget. Victims are chosen
        // batch-tier first (youngest batch session), then youngest
        // overall; the oldest session is never evicted (guaranteed
        // progress). Each victim is served by the configured
        // preemption mechanism: recompute throws its run away (a
        // partially prefilled victim re-ingests its chunks from
        // scratch like a mid-decode victim re-decodes), swap freezes
        // it in the host pool with all progress intact, and auto
        // compares the modeled swap round trip against the modeled
        // cost of replaying the victim's work so far.
        while (opts_.kv_budget_blocks > 0 &&
               fleetBlocks() +
                       iter_growth * static_cast<long>(active.size() +
                                                       prefilling.size()) >
                   opts_.kv_budget_blocks) {
            // Cached blocks are the lowest residency tier: drain the
            // cache LRU-first before preempting any live session. An
            // eviction may free no physical blocks (a session still
            // shares them) — the loop keeps draining until pressure
            // clears or the cache is empty.
            if (cache_on && cache->evictLru())
                continue;
            if (active.size() <= 1)
                break;
            // Victim choice: batch tier first, then the session
            // FURTHEST from its deadline — largest slack, treating
            // no deadline as infinite slack — youngest-first on
            // exact ties (the scan runs youngest to oldest and only
            // a strictly better candidate replaces). Evicting the
            // max-slack session keeps near-deadline work running:
            // the old tier-only rule would evict a victim with
            // seconds of slack and re-admit it past its deadline.
            // Without deadlines every slack is infinite and this
            // reduces bit-identically to the legacy youngest-batch-
            // else-youngest rule.
            size_t vi = active.size();
            int vi_tier = -1;
            double vi_slack = 0.0;
            for (size_t i = active.size(); i-- > 1;) {
                if (active[i].sess->awaitingTransfer())
                    continue; // blocks pinned by an in-flight DMA
                const int tier =
                    static_cast<int>(active[i].req.priority);
                const double slack =
                    active[i].req.deadline_s > 0.0
                        ? active[i].req.deadline_s - clock
                        : std::numeric_limits<double>::infinity();
                if (vi == active.size() || tier > vi_tier ||
                    (tier == vi_tier && slack > vi_slack)) {
                    vi = i;
                    vi_tier = tier;
                    vi_slack = slack;
                }
            }
            if (vi == active.size())
                break; // everything evictable is mid-transfer
            Entry victim = std::move(active[vi]);
            active.erase(active.begin() + static_cast<long>(vi));
            ++victim.preemptions;
            ++fleet.preemptions;
            const bool swap =
                opts_.preempt_mode == PreemptMode::Swap ||
                (opts_.preempt_mode == PreemptMode::Auto &&
                 has_swap_link &&
                 victim.sess->swapRoundTripSeconds() <
                     victim.sess->modeledCostSoFar());
            decision(swap ? obs::TraceDecision::PreemptSwap
                          : obs::TraceDecision::PreemptRecompute,
                     victim.req.id);
            if (swap) {
                // Swap preemption: KV moves to the host pool (device
                // blocks free), the session freezes with its rng
                // stream, emission and prefill progress intact. The
                // transfer pays on the fleet clock (overlap off) or
                // rides the victim's device host channel while the
                // fleet keeps iterating (overlap on); either way the
                // session cannot swap back in before it lands.
                const double h = victim.sess->swapOut();
                ++victim.swaps;
                ++fleet.swaps_out;
                victim.xfer_bytes =
                    mem.kvBytes(victim.sess->modeledPositions());
                fleet.transfer_bytes_sent += victim.xfer_bytes;
                if (overlap) {
                    const double busy_from = std::max(
                        clock,
                        xfer.freeAt(static_cast<int>(victim.device),
                                    hw::DmaChannel::Host));
                    victim.xfer_ready_s = xfer.submit(
                        static_cast<int>(victim.device),
                        hw::DmaChannel::Host, clock, h);
                    transferSpan(busy_from, victim.xfer_ready_s,
                                 victim.device, hw::DmaChannel::Host,
                                 victim.req.id);
                    victim.sess->beginTransfer();
                    ++fleet.transfers_overlapped;
                } else {
                    transferSpan(clock, clock + h, victim.device,
                                 hw::DmaChannel::Host, victim.req.id);
                    clock += h;
                    fleet.transfer_bytes_received += victim.xfer_bytes;
                }
                swappedQ.push_back(std::move(victim));
            } else {
                victim.sess.reset(); // frees the KV blocks
                victim.prefill_ready_s = -1.0;
                victim.chunks = 0;
                // The tree's references on this prompt's blocks (if
                // it was inserted) survive the session — cached
                // content stays valid — but the re-run re-matches
                // and, if needed, re-inserts fresh tail blocks.
                victim.cached = 0;
                victim.sim_adopted = 0;
                victim.cache_inserted = false;
                // Recompute preemption: back to the head of the wait
                // queue (tier-aware admission keeps a batch victim
                // from blocking interactive peers) and re-run from
                // scratch.
                waiting.push_front(std::move(victim));
            }
        }

        // --- plan the mixed iteration (scheduler thread) -----------
        // Every decode-ready session steps; mid-prefill sessions run
        // one planned chunk each under the iteration token budget.
        std::vector<int> grant(active.size(), 0);
        if (chunked) {
            std::vector<int> pending(active.size(), 0);
            std::vector<int> rank(active.size(), 0);
            int decodes = 0;
            for (size_t i = 0; i < active.size(); ++i) {
                rank[i] = static_cast<int>(active[i].req.priority);
                if (active[i].sess->awaitingTransfer()) {
                    // Pinned mid-DMA: neither decodes nor chunks
                    // this iteration, so no budget is granted to it.
                } else if (active[i].sess->prefillDone()) {
                    ++decodes;
                } else {
                    pending[i] = active[i].sess->prefillRemaining();
                }
            }
            // Pipeline backfill: convert last iteration's idle
            // stages into extra budget tokens so queued prefill
            // chunks slot into the bubble the early exits opened.
            // Rounded up: any free stage admits at least one token,
            // so tight budgets still backfill.
            long extra = 0;
            if (staged && opts_.stage_backfill &&
                opts_.prefill.max_tokens_per_iteration > 0 &&
                free_stages_prev > 0) {
                extra = (static_cast<long>(
                             opts_.prefill.max_tokens_per_iteration) *
                             free_stages_prev +
                         n_stages - 1) /
                        n_stages;
            }
            if (extra > 0) {
                const std::vector<int> base =
                    planner.plan(pending, rank, decodes);
                grant = planner.plan(pending, rank, decodes, extra);
                for (size_t i = 0; i < grant.size(); ++i) {
                    if (grant[i] > base[i]) {
                        ++fleet.backfill_grants;
                        fleet.backfill_tokens += grant[i] - base[i];
                        decision(obs::TraceDecision::BackfillGrant,
                                 active[i].req.id, grant[i] - base[i]);
                    }
                }
            } else {
                grant = planner.plan(pending, rank, decodes);
            }
        }

        // --- step every active session, in parallel by engine ------
        const double step_t0 = clock;
        // Shard high-water marks: everything a worker emits past its
        // mark belongs to THIS iteration and gets its end clamped to
        // the iteration's actual clock advance below.
        std::vector<size_t> shard_mark;
        if (tracing) {
            shard_mark.resize(engines.size());
            for (size_t e = 0; e < engines.size(); ++e)
                shard_mark[e] = rec.worker(e).size();
        }
        size_t engines_used = 0;
        {
            std::vector<bool> has(engines.size(), false);
            for (const auto &a : active) {
                if (!has[a.engine]) {
                    has[a.engine] = true;
                    ++engines_used;
                }
            }
            auto stepEngine = [&](size_t eng) {
                // This thread's private shard. Events carry the
                // session's admission-order slot `i` as lane AND seq
                // (never the physical engine index, which depends on
                // the worker count), so merged() replays identically
                // for any engine fan-out.
                obs::TraceShard &shard = rec.worker(eng);
                const auto emitStep = [&](size_t i, const Entry &a) {
                    if (!tracing ||
                        (a.granted <= 0 && a.cost.tokens <= 0))
                        return; // idle: no span
                    obs::TraceEvent ev;
                    ev.kind = a.granted > 0
                                  ? obs::TraceKind::PrefillChunk
                                  : obs::TraceKind::Step;
                    ev.t0 = step_t0;
                    // Parenthesized to match the iteration pricing's
                    // association; any remaining ulp overhang versus
                    // the priced dt (stage pricing re-associates the
                    // sums) is clamped to the new clock after the
                    // join, so per-lane spans are exactly disjoint.
                    ev.t1 = step_t0 +
                            (a.cost.shared_s + a.cost.private_s);
                    ev.device = static_cast<int>(a.device);
                    ev.lane = static_cast<int>(i);
                    ev.request = a.req.id;
                    ev.tokens =
                        a.granted > 0 ? a.granted : a.cost.tokens;
                    ev.deepest_layer = a.cost.deepest_layer;
                    ev.stages_used = a.cost.stages_used;
                    ev.op_s = a.cost.class_s;
                    ev.seq = i;
                    shard.emit(std::move(ev));
                };
                for (size_t i = 0; i < active.size(); ++i) {
                    Entry &a = active[i];
                    if (a.engine != eng)
                        continue;
                    if (a.sess->awaitingTransfer()) {
                        // Blocks still riding the DMA: the session
                        // idles at zero cost until the link settles.
                        a.granted = 0;
                        a.cost = engines::StepCost{};
                        continue;
                    }
                    if (chunked && !a.sess->prefillDone()) {
                        if (grant[i] > 0) {
                            a.granted = a.sess->prefillChunk(grant[i]);
                            a.cost = a.sess->lastStep();
                            emitStep(i, a);
                        } else {
                            // Budget exhausted by decode peers: the
                            // session idles this iteration.
                            a.granted = 0;
                            a.cost = engines::StepCost{};
                        }
                        continue;
                    }
                    a.granted = 0;
                    a.sess->step();
                    a.cost = a.sess->lastStep();
                    emitStep(i, a);
                }
            };
            if (engines_used <= 1) {
                for (size_t e = 0; e < engines.size(); ++e)
                    if (has[e])
                        stepEngine(e);
            } else {
                std::vector<std::thread> threads;
                threads.reserve(engines_used);
                for (size_t e = 0; e < engines.size(); ++e)
                    if (has[e])
                        threads.emplace_back(stepEngine, e);
                for (auto &t : threads)
                    t.join();
            }
        }

        // --- price the iteration (admission order, deterministic) --
        // Legacy: the shared weight stream is read once for the whole
        // batch, so its time is the max over sessions. Stage-split
        // (pp > 1): each STAGE's weight stream is read once, so the
        // per-stage maxima sum — sessions with disjoint layer ranges
        // (a shallow exit beside a deep decode) serialize through the
        // pipeline instead of riding free under the global max. Never
        // cheaper than the legacy max; equal for homogeneous batches.
        int busy_stages = 0;
        for (const auto &a : active) {
            specee_assert(a.cost.stages_used >= 0 &&
                              a.cost.stages_used <= n_stages,
                          "session stage span %d outside [0, %d]",
                          a.cost.stages_used, n_stages);
            specee_assert(a.cost.stage_shared_s.empty() ||
                              static_cast<int>(
                                  a.cost.stage_shared_s.size()) ==
                                  n_stages,
                          "stage cost vector does not match the "
                          "fleet's stage graph");
            busy_stages = std::max(busy_stages, a.cost.stages_used);
        }
        // Each decode device prices its own share of the batch
        // (per-device shared weight-stream max — or per-stage maxima
        // when stage pricing is on — plus its private sum) and the
        // fleet advances in lockstep at the slowest device. One
        // device reproduces the legacy single-device arithmetic
        // bit-identically.
        double dt = 0.0;
        for (int d = 0; d < n_decode_dev; ++d) {
            double shared_t = 0.0, private_t = 0.0;
            double shared_e = 0.0, private_e = 0.0;
            for (const auto &a : active) {
                if (static_cast<int>(a.device) != d)
                    continue;
                private_t += a.cost.private_s;
                private_e += a.cost.private_j;
            }
            if (staged && opts_.stage_pricing) {
                std::vector<double> st(static_cast<size_t>(n_stages),
                                       0.0);
                std::vector<double> se(static_cast<size_t>(n_stages),
                                       0.0);
                for (const auto &a : active) {
                    // An idle (chunk-starved or mid-DMA) session
                    // carries an empty vector and no cost.
                    if (static_cast<int>(a.device) != d ||
                        a.cost.stage_shared_s.empty())
                        continue;
                    for (int s = 0; s < n_stages; ++s) {
                        st[s] = std::max(
                            st[s], a.cost.stage_shared_s
                                       [static_cast<size_t>(s)]);
                        se[s] = std::max(
                            se[s], a.cost.stage_shared_j
                                       [static_cast<size_t>(s)]);
                    }
                }
                for (int s = 0; s < n_stages; ++s) {
                    shared_t += st[s];
                    shared_e += se[s];
                }
            } else {
                for (const auto &a : active) {
                    if (static_cast<int>(a.device) != d)
                        continue;
                    shared_t = std::max(shared_t, a.cost.shared_s);
                    shared_e = std::max(shared_e, a.cost.shared_j);
                }
            }
            dt = std::max(dt, shared_t + private_t);
            fleet.energy_j += shared_e + private_e;
        }
        clock += dt;
        if (tracing) {
            // Workers computed each span end as step_t0 + (shared +
            // private); dt reduces the same costs per device (or per
            // stage), so a span can overhang the new clock by an ulp
            // of fp re-association. Clamp: a span never outlives its
            // iteration, and per-lane spans stay exactly disjoint.
            for (size_t e = 0; e < engines.size(); ++e)
                rec.worker(e).clampEnds(shard_mark[e], clock);
        }
        if (overlap && dt == 0.0) {
            // Every active session is pinned mid-DMA and nothing
            // stepped: jump to the next modeled event (a transfer
            // landing, a prefill device finishing, an arrival) so
            // the fleet never livelocks at a frozen clock.
            const double next = nextEvent();
            specee_assert(std::isfinite(next) && next > clock,
                          "stalled fleet with no future event at %f",
                          clock);
            clock = next;
        }
        occupancy += static_cast<double>(active.size());
        ++fleet.iterations;
        if (tracing) {
            obs::TraceEvent ev;
            ev.kind = obs::TraceKind::Iteration;
            ev.t0 = step_t0;
            ev.t1 = clock;
            int mid_prefill = 0;
            int iter_tokens = 0;
            for (const auto &a : active) {
                if (!a.sess->prefillDone())
                    ++mid_prefill;
                iter_tokens += a.cost.tokens;
            }
            ev.batch = static_cast<int>(active.size());
            ev.prefilling =
                mid_prefill + static_cast<int>(prefilling.size());
            ev.tokens = iter_tokens;
            ev.seq = trace_seq++;
            rec.control().emit(std::move(ev));
        }

        // Stage occupancy: every session's weight stream covers the
        // contiguous stage prefix [0, stages_used), so the union is
        // the max span. What's left is next iteration's backfill
        // bubble.
        fleet.stage_busy += busy_stages;
        fleet.peak_stage_occupancy =
            std::max(fleet.peak_stage_occupancy, busy_stages);
        free_stages_prev = n_stages - busy_stages;

        // --- prefill bookkeeping (chunks land at this boundary) ----
        for (auto &a : active) {
            if (a.granted > 0) {
                ++a.chunks;
                ++fleet.prefill_chunks;
                fleet.prefill_tokens += a.granted;
            } else if (a.cost.tokens > 0) {
                timeline.recordExit(clock, a.cost.deepest_layer);
            }
            if (a.sess->prefillDone() && a.prefill_ready_s < 0.0) {
                a.prefill_ready_s = clock;
                cacheInsert(a);
            }
        }
        // Enforce the cache capacity after this boundary's inserts
        // (transient overshoot is covered by the pool's headroom),
        // and track the cache's footprint at its per-iteration peak.
        if (cache_on) {
            while (cache->heldBlocks() > cache_capacity &&
                   cache->evictLru()) {
            }
            fleet.peak_cached_blocks = std::max(
                fleet.peak_cached_blocks, cache->heldBlocks());
        }

        // --- stream new tokens, track TTFT / inter-token gaps ------
        // fleet.tokens counts DELIVERED tokens only: a preempted
        // session re-decodes its prefix, but those tokens were
        // already streamed, so the recompute shows up as time and
        // energy (goodput degradation), not as extra throughput.
        for (auto &a : active) {
            const auto &em = a.sess->emission();
            for (size_t i = a.streamed; i < em.tokens.size(); ++i) {
                ++fleet.tokens;
                timeline.recordTokens(clock, a.req.id, 1);
                ctl_tl.recordTokens(clock, a.req.id, 1);
                if (a.first_token_s < 0.0) {
                    a.first_token_s = clock;
                    const double ttft = clock - a.req.arrival_s;
                    timeline.recordTtft(clock, ttft);
                    ctl_tl.recordTtft(clock, ttft);
                    // A blown TTFT bound is a verdict knowable NOW:
                    // the retirement judgement cannot un-fail it, so
                    // the controller's reward attribution must not
                    // keep crediting this request until then.
                    if (controlled) {
                        const obs::SloSpec &spec = opts_.slo.tier(
                            static_cast<int>(a.req.priority));
                        if (spec.ttft_s > 0.0 && ttft > spec.ttft_s)
                            online_attained[a.req.id] = false;
                    }
                } else {
                    const double gap = clock - a.last_token_s;
                    a.itl_sum_s += gap;
                    ++a.itl_gaps;
                    itl_samples.push_back(gap);
                    a.itl_max_s = std::max(a.itl_max_s, gap);
                    timeline.recordItl(clock, gap);
                    ctl_tl.recordItl(clock, gap);
                    // Same for an inter-token gap past the tier's
                    // ITL bound: the request is doomed mid-flight.
                    if (controlled) {
                        const obs::SloSpec &spec = opts_.slo.tier(
                            static_cast<int>(a.req.priority));
                        if (spec.itl_s > 0.0 && gap > spec.itl_s)
                            online_attained[a.req.id] = false;
                    }
                }
                a.last_token_s = clock;
                if (on_token &&
                    !on_token(TokenEvent{a.req.id, em.tokens[i],
                                         static_cast<int>(i), clock})) {
                    // Streaming backpressure: the consumer cancelled;
                    // the request retires at this boundary and no
                    // further tokens are decoded or delivered.
                    a.cancel = true;
                }
                a.streamed = i + 1;
                if (a.cancel)
                    break;
            }
        }

        // --- fleet KV / memory census (peak over iterations) -------
        long positions = 0;
        for (const auto &a : active)
            positions += a.sess->modeledPositions();
        // Disaggregation: ingesting prompts and queued handoffs hold
        // device KV too (unified fleets keep these empty, so the
        // census is unchanged there).
        for (const auto &p : prefilling)
            positions += p.sess->modeledPositions();
        for (const auto &h : handoffQ)
            positions += h.sess->modeledPositions();
        // With the cache on, peak occupancy is physical (shared and
        // cached blocks counted once) — the same quantity the budget
        // gates read.
        long blocks = fleetBlocks();
        fleet.peak_kv_blocks = std::max(fleet.peak_kv_blocks, blocks);
        fleet.peak_fleet_mem_gb = std::max(
            fleet.peak_fleet_mem_gb,
            hw::MemoryTracker::toGiB(mem.fleetTotalBytes(
                positions, static_cast<int>(active.size() +
                                            prefilling.size()))));
        if (overlap) {
            // In-flight census: blocks (and their true-dims bytes)
            // pinned on a DMA channel right now — neither endpoint's
            // settled working set.
            long infl_blocks = 0;
            for (const auto &p : pools)
                infl_blocks += p->transferBlocksInFlight();
            long infl_pos = 0;
            const auto inflight = [&](const Entry &e) {
                if (e.sess && e.sess->awaitingTransfer())
                    infl_pos += e.sess->modeledPositions();
            };
            for (const auto &a : active)
                inflight(a);
            for (const auto &s : swappedQ)
                inflight(s);
            for (const auto &h : handoffQ)
                inflight(h);
            fleet.peak_inflight_kv_blocks =
                std::max(fleet.peak_inflight_kv_blocks, infl_blocks);
            fleet.peak_inflight_mem_gb =
                std::max(fleet.peak_inflight_mem_gb,
                         hw::MemoryTracker::toGiB(
                             mem.inflightKvBytes(infl_pos)));
        }
        long host_blocks = 0;
        if (!swappedQ.empty()) {
            long host_positions = 0;
            for (const auto &s : swappedQ) {
                host_blocks += s.sess->hostBlocks();
                host_positions += s.sess->modeledPositions();
            }
            fleet.peak_host_kv_blocks =
                std::max(fleet.peak_host_kv_blocks, host_blocks);
            fleet.peak_host_mem_gb = std::max(
                fleet.peak_host_mem_gb,
                hw::MemoryTracker::toGiB(
                    mem.hostKvBytes(host_positions)));
        }
        timeline.recordIteration(
            clock, static_cast<int>(active.size()), busy_stages,
            blocks, host_blocks,
            cache_on ? cache->heldBlocks() : 0);
        ctl_tl.recordIteration(
            clock, static_cast<int>(active.size()), busy_stages,
            blocks, host_blocks,
            cache_on ? cache->heldBlocks() : 0);

        // --- retire finished and cancelled sessions ----------------
        size_t keep = 0;
        for (size_t i = 0; i < active.size(); ++i) {
            Entry &a = active[i];
            if (a.cancel) {
                // Consumer cancellation: delivered tokens stand (and
                // their gaps count toward fleet ITL), but the
                // request retires without a finalized result — like
                // a deadline drop, counted separately.
                RequestOutcome &o = outcomes[a.outcome];
                o.cancelled = true;
                finishTimeline(a, o);
                o.ttft_s = a.first_token_s >= 0.0
                               ? a.first_token_s - a.req.arrival_s
                               : 0.0;
                ++fleet.cancelled;
                if (controlled)
                    online_attained[a.req.id] = false;
                decision(obs::TraceDecision::Cancel, a.req.id);
                itl_sum += a.itl_sum_s;
                itl_gaps += a.itl_gaps;
                continue; // KV frees with the entry
            }
            if (!a.sess->finished()) {
                if (keep != i)
                    active[keep] = std::move(a);
                ++keep;
                continue;
            }
            RequestOutcome &o = outcomes[a.outcome];
            o.result = a.sess->finalize();
            finishTimeline(a, o);
            o.ttft_s = a.first_token_s - a.req.arrival_s;
            o.mean_itl_s = a.itl_gaps > 0
                               ? a.itl_sum_s /
                                     static_cast<double>(a.itl_gaps)
                               : 0.0;
            judgeSlo(a, o, true);
            if (controlled)
                online_attained[a.req.id] = o.slo.attained();
            if (o.slo.attained())
                slo_tokens += static_cast<long>(a.streamed);
            if (tracing) {
                // Lifetime flow arrow: first admission -> completion.
                obs::TraceEvent ev;
                ev.kind = obs::TraceKind::RequestFlow;
                ev.t0 = o.admit_s;
                ev.t1 = clock;
                ev.device = static_cast<int>(a.device);
                ev.request = a.req.id;
                ev.seq = trace_seq++;
                rec.control().emit(std::move(ev));
            }
            itl_sum += a.itl_sum_s;
            itl_gaps += a.itl_gaps;
        }
        active.resize(keep);
    }

    // --- transfer-engine conservation ------------------------------
    // Every transfer initiated either landed or settled at drop, so
    // the byte census balances exactly (per-transfer bytes are
    // integer-valued doubles well below 2^53, so both sums are exact
    // regardless of accumulation order).
    specee_assert(fleet.transfer_bytes_sent ==
                      fleet.transfer_bytes_received,
                  "transfer-byte conservation violated: %f sent, %f "
                  "received",
                  fleet.transfer_bytes_sent,
                  fleet.transfer_bytes_received);
    fleet.transfer_busy_s = xfer.busySeconds();

    // --- drain the cache: reference-count conservation -------------
    // Every session has retired, so after the cache releases its
    // references every pool must be empty — a leftover block means a
    // retain/release imbalance somewhere in the sharing machinery.
    if (cache_on) {
        fleet.cache_evictions = cache->evictions();
        cache->clear();
        for (const auto &p : pools) {
            specee_assert(p->blocksInUse() == 0,
                          "prefix cache drained but %d paged KV "
                          "blocks are still referenced",
                          p->blocksInUse());
        }
    }

    // --- reduce fleet metrics over the finished timeline -----------
    fleet.requests = static_cast<long>(n);
    fleet.makespan_s = clock - t0;
    fleet.tokens_per_s =
        fleet.makespan_s > 0.0
            ? static_cast<double>(fleet.tokens) / fleet.makespan_s
            : 0.0;

    std::vector<double> latencies, queues, ttfts, prefills;
    latencies.reserve(n);
    queues.reserve(n);
    ttfts.reserve(n);
    prefills.reserve(n);
    for (const auto &o : outcomes) {
        if (o.dropped || o.cancelled)
            continue;
        latencies.push_back(o.latency_s);
        queues.push_back(o.queue_s);
        ttfts.push_back(o.ttft_s);
        prefills.push_back(o.prefill_s);
        fleet.oplog.merge(o.result.stats.oplog);
    }
    // Means accumulate in insertion order (bit-compat with the
    // pre-Stats reduction); each Stats sorts its samples once and
    // serves both percentile queries.
    const metrics::Stats lat_stats(latencies);
    const metrics::Stats ttft_stats(ttfts);
    const metrics::Stats itl_stats(itl_samples);
    fleet.mean_latency_s = metrics::mean(latencies);
    fleet.p50_latency_s = lat_stats.percentile(50.0);
    fleet.p99_latency_s = lat_stats.percentile(99.0);
    fleet.mean_queue_s = metrics::mean(queues);
    fleet.mean_ttft_s = metrics::mean(ttfts);
    fleet.p50_ttft_s = ttft_stats.percentile(50.0);
    fleet.p99_ttft_s = ttft_stats.percentile(99.0);
    fleet.mean_prefill_s = metrics::mean(prefills);
    fleet.mean_itl_s =
        itl_gaps > 0 ? itl_sum / static_cast<double>(itl_gaps) : 0.0;
    fleet.p50_itl_s = itl_stats.percentile(50.0);
    fleet.p99_itl_s = itl_stats.percentile(99.0);
    fleet.energy_per_token_j =
        fleet.tokens > 0
            ? fleet.energy_j / static_cast<double>(fleet.tokens)
            : 0.0;
    fleet.avg_power_w = fleet.makespan_s > 0.0
                            ? fleet.energy_j / fleet.makespan_s
                            : 0.0;
    fleet.mean_batch_occupancy =
        fleet.iterations > 0
            ? occupancy / static_cast<double>(fleet.iterations)
            : 0.0;
    fleet.pipeline_utilization =
        fleet.iterations > 0
            ? static_cast<double>(fleet.stage_busy) /
                  (static_cast<double>(fleet.iterations) * n_stages)
            : 0.0;

    // --- SLO attainment + observability artifacts ------------------
    for (const auto &o : outcomes) {
        if (!o.slo.evaluated)
            continue;
        ++fleet.slo_evaluated;
        if (o.slo.attained())
            ++fleet.slo_attained;
    }
    fleet.goodput_under_slo =
        fleet.makespan_s > 0.0
            ? static_cast<double>(slo_tokens) / fleet.makespan_s
            : 0.0;
    if (tracing)
        fleet.trace = rec.merged();
    if (timeline.enabled()) {
        std::unordered_set<uint64_t> attained;
        for (const auto &o : outcomes)
            if (!o.dropped && !o.cancelled && o.slo.attained())
                attained.insert(o.request.id);
        fleet.timeline = timeline.finalize(
            clock, [&](uint64_t id) { return attained.count(id) > 0; });
    }
    if (controlled)
        fleet.controller = ctl.stats();
    return fleet;
}

} // namespace specee::serve
