/**
 * @file
 * Thread-safe two-tier FIFO request queue feeding the scheduler.
 *
 * Dequeue order is interactive-first within FIFO: pop() returns the
 * oldest Interactive request if any is queued, else the oldest Batch
 * request — so a latency-sensitive request never waits behind
 * throughput work at the queue, while each tier stays strictly
 * first-in-first-out. The live scheduler applies the same rule at
 * admission time, so fleet results never depend on which thread
 * submitted which request. The queue may be bounded: pushes beyond
 * `capacity` (and pushes after close()) are defined no-ops that
 * return false and increment the rejected-request counter — the
 * backpressure signal offered-load experiments read.
 */

#ifndef SPECEE_SERVE_REQUEST_QUEUE_HH
#define SPECEE_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>

#include "serve/request.hh"

namespace specee::serve {

/** Multi-producer multi-consumer two-tier FIFO of pending requests. */
class RequestQueue
{
  public:
    /** @param capacity max queued requests; 0 = unbounded */
    explicit RequestQueue(size_t capacity = 0);

    /**
     * Enqueue one request. Returns false — and counts the request as
     * rejected — when the queue is closed or at capacity; both are
     * defined no-ops, not errors.
     */
    bool push(Request r);

    /**
     * Dequeue the oldest interactive request (else the oldest batch
     * request), blocking until one is available or the queue is
     * closed. Returns false when closed and drained.
     */
    bool pop(Request &out);

    /** Non-blocking dequeue (same tier order); false when empty. */
    bool tryPop(Request &out);

    /** Wake all blocked consumers; no further pushes accepted. */
    void close();

    size_t size() const;
    bool closed() const;

    /** Configured capacity (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /** Requests refused so far (queue full or closed). */
    size_t rejected() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> q_;
    size_t capacity_;
    size_t rejected_ = 0;
    bool closed_ = false;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_REQUEST_QUEUE_HH
