/**
 * @file
 * Thread-safe FIFO request queue feeding the serving workers.
 *
 * Admission order is strictly first-in-first-out: workers drain the
 * queue in submission order, and the BatchScheduler later re-sorts by
 * (arrival, id) so fleet results never depend on which worker picked
 * up which request.
 */

#ifndef SPECEE_SERVE_REQUEST_QUEUE_HH
#define SPECEE_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>

#include "serve/request.hh"

namespace specee::serve {

/** Multi-producer multi-consumer FIFO of pending requests. */
class RequestQueue
{
  public:
    /** Enqueue one request. @pre queue not closed */
    void push(Request r);

    /**
     * Dequeue the oldest request, blocking until one is available or
     * the queue is closed. Returns false when closed and drained.
     */
    bool pop(Request &out);

    /** Non-blocking dequeue; false when currently empty. */
    bool tryPop(Request &out);

    /** Wake all blocked consumers; no further pushes accepted. */
    void close();

    size_t size() const;
    bool closed() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> q_;
    bool closed_ = false;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_REQUEST_QUEUE_HH
