/**
 * @file
 * AdaptiveController — SLO-driven feedback control over scheduler
 * knobs.
 *
 * The batch scheduler exposes several knobs whose best setting
 * depends on the workload mix of the moment: the prefill chunk size
 * (small chunks protect ITL, big chunks finish prompts sooner), the
 * KV admission watermark (admit eagerly vs keep headroom), the
 * per-iteration fresh-admission cap, and the per-tier SpecEE exit
 * threshold (aggressive exits trade a little depth for latency).
 * A static choice is tuned for one mix and loses goodput-under-SLO
 * when the mix shifts.
 *
 * The controller closes the loop: at every decision epoch (a fixed
 * span of the MODELED clock) it reads the just-closed obs::Timeline
 * window — goodput under SLO, windowed TTFT/ITL percentiles, KV and
 * stage occupancy — scores the knob arms that were live during that
 * window, and Thompson-samples the next setting of each knob from a
 * small discrete arm set. Rewards are the window's SLO attainment
 * ratio (slo_tokens / tokens), folded into per-arm Beta posteriors
 * as fractional updates, so the controller converges on arms that
 * keep tokens inside their SLOs and keeps exploring when the
 * workload drifts.
 *
 * Determinism: every stochastic draw comes from a counter-derived
 * fork of one seeded Rng, and the controller runs on the scheduler
 * thread against the modeled clock — the knob trajectory is a pure
 * function of (options, observed windows), bit-identical across
 * worker counts. Disabled (the default), the controller holds the
 * scheduler's static knob values forever and the scheduler is
 * bit-identical to one built without it.
 */

#ifndef SPECEE_SERVE_CONTROLLER_HH
#define SPECEE_SERVE_CONTROLLER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/timeline.hh"
#include "util/rng.hh"

namespace specee::serve {

/**
 * Controller knobs (scheduler policy). Off by default; each arm
 * vector is one knob's discrete search space — an empty vector
 * freezes that knob at its static value.
 */
struct ControllerOptions
{
    /**
     * Master switch. Off (default) is bit-inert: the scheduler's
     * emissions AND modeled costs are identical to a build without
     * the controller.
     */
    bool enabled = false;

    /** Seed of the controller's private rng stream. */
    uint64_t seed = 1;

    /** Decision epoch in modeled seconds (> 0 when enabled). */
    double epoch_s = 0.25;

    /**
     * Prefill chunk-size arms (each >= 1). The knob is additionally
     * frozen when the scheduler's static chunk_tokens is 0 —
     * chunking on/off changes admission structure and is not a
     * runtime-steerable axis.
     */
    std::vector<int> chunk_arms;

    /** KV admission watermark arms, each in (0, 1]. */
    std::vector<double> watermark_arms;

    /** Fresh-admissions-per-iteration cap arms (0 = unlimited). */
    std::vector<int> admit_arms;

    /** Interactive-tier exit-threshold arms, each in (0, 1). */
    std::vector<float> interactive_exit_arms;

    /** Batch-tier exit-threshold arms, each in (0, 1). */
    std::vector<float> batch_exit_arms;
};

/** One live setting of every controlled knob. */
struct ControllerKnobs
{
    int chunk_tokens = 0;
    double kv_watermark = 1.0;
    int max_admissions_per_iteration = 0; ///< 0 = unlimited
    float interactive_exit_threshold = 0.0f;
    float batch_exit_threshold = 0.0f;
};

/** One decision epoch of the knob trajectory. */
struct ControllerEpoch
{
    long epoch = 0; ///< 0-based epoch index
    double t = 0.0; ///< modeled decision instant
    /** SLO attainment of the closed window (slo_tokens / tokens). */
    double reward = 0.0;
    bool reward_valid = false; ///< false when the window was idle
    int changed = 0;           ///< knobs whose value moved
    ControllerKnobs knobs;     ///< settings for the NEXT epoch
};

/** Controller outcome exposed through FleetStats. */
struct ControllerStats
{
    long epochs = 0;
    long knob_changes = 0;
    std::vector<ControllerEpoch> trajectory;
};

/** Thompson-sampling feedback controller over scheduler knobs. */
class AdaptiveController
{
  public:
    /** The controlled knobs, in a fixed order (test introspection). */
    enum class KnobId
    {
        Chunk = 0,
        Watermark,
        Admit,
        InteractiveExit,
        BatchExit,
    };
    static constexpr int kNumKnobs = 5;

    /** Disabled controller (decide() must not be called). */
    AdaptiveController() = default;

    /**
     * `defaults` are the scheduler's static knob values; the
     * controller starts there and only moves knobs with non-empty
     * arm sets. Arm values are validated eagerly.
     */
    AdaptiveController(const ControllerOptions &opts,
                       const ControllerKnobs &defaults);

    bool enabled() const { return enabled_; }
    double epochSeconds() const { return opts_.epoch_s; }

    /** Settings the scheduler should run under right now. */
    const ControllerKnobs &knobs() const { return knobs_; }

    const ControllerStats &stats() const { return stats_; }

    /**
     * Close one decision epoch at modeled time `now`: credit the
     * arms live during `closed` with its SLO-attainment reward,
     * Thompson-sample the next arm of every active knob and update
     * knobs(). A fully idle window (no iterations, no tokens)
     * yields no posterior update — silence is not evidence.
     * @return number of knobs whose value changed @pre enabled()
     */
    int decide(double now, const obs::TimelineWindow &closed);

    /** True when `k` has an arm set and may move. */
    bool knobActive(KnobId k) const;

    /** Posterior mean of arm `arm` of knob `k` (test hook). */
    double posteriorMean(KnobId k, size_t arm) const;

  private:
    /** Per-knob Thompson state over its discrete arm set. */
    struct Knob
    {
        bool active = false;
        std::vector<double> alpha; ///< Beta posterior successes + 1
        std::vector<double> beta;  ///< Beta posterior failures + 1
        size_t chosen = 0;         ///< live arm (valid once sampled)
        bool have_choice = false;  ///< false until the first sample
    };

    const Knob &knob(KnobId k) const
    {
        return knobs_state_[static_cast<size_t>(k)];
    }
    Knob &knob(KnobId k)
    {
        return knobs_state_[static_cast<size_t>(k)];
    }

    /** Beta(a, b) sample via the Marsaglia-Tsang gamma ratio. */
    static double sampleBeta(Rng &rng, double a, double b);
    static double sampleGamma(Rng &rng, double shape);

    /** Sample an arm for `k`; @return true when the value moved. */
    bool sampleKnob(KnobId k);

    bool enabled_ = false;
    ControllerOptions opts_;
    ControllerKnobs knobs_;
    Knob knobs_state_[kNumKnobs];
    Rng rng_;
    uint64_t draws_ = 0; ///< counter feeding rng_.fork per decision
    ControllerStats stats_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_CONTROLLER_HH
