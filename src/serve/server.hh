/**
 * @file
 * Multi-request serving node (§7.2.1 cloud scenario at fleet scale).
 *
 * A Server owns a pool of worker threads, each with its own Engine
 * built from one shared trained Pipeline (predictor bank, AdaInfer
 * SVMs, RAEE index and corpus are immutable after training and safe
 * to share). Workers drain the RequestQueue in FIFO order and run
 * each request through the re-entrant per-request engine entry
 * point; the BatchScheduler then lays the completed runs onto a
 * continuous-batching timeline and reduces them to fleet throughput,
 * latency percentiles and energy.
 *
 *   serve::Server server(pipe, {.engine = cfg.withSpecEE()});
 *   server.submit(serve::synthesizeStream({.rate_rps = 8.0}));
 *   auto report = server.drain();
 *   // report.fleet.tokens_per_s, report.fleet.p99_latency_s, ...
 *
 * Results are bit-deterministic for a fixed request stream no matter
 * how many workers run: every request decodes under its own seed and
 * the timeline is replayed in (arrival, id) order.
 */

#ifndef SPECEE_SERVE_SERVER_HH
#define SPECEE_SERVE_SERVER_HH

#include <memory>
#include <vector>

#include "engines/pipeline.hh"
#include "serve/batch_scheduler.hh"
#include "serve/request_queue.hh"

namespace specee::serve {

/** Server construction options. */
struct ServerOptions
{
    /** Engine configuration every worker runs. */
    engines::EngineConfig engine;

    hw::HardwareSpec spec = hw::HardwareSpec::a100();

    /** Worker threads (each owns one Engine). */
    int workers = 2;

    SchedulerOptions sched;
};

/** Everything a drained request stream produced. */
struct ServeReport
{
    /** Per-request outcomes in admission order. */
    std::vector<RequestOutcome> outcomes;

    FleetStats fleet;
};

/** Multi-threaded serving node over one trained pipeline. */
class Server
{
  public:
    Server(const engines::Pipeline &pipe, const ServerOptions &opts);

    void submit(Request r);
    void submit(std::vector<Request> rs);

    /** Requests submitted but not yet drained. */
    size_t pending() const { return queue_.size(); }

    /**
     * Serve every queued request to completion and reduce the fleet
     * metrics. Deterministic for a fixed stream regardless of the
     * worker count.
     */
    ServeReport drain();

    const ServerOptions &options() const { return opts_; }

  private:
    const engines::Pipeline &pipe_;
    ServerOptions opts_;
    RequestQueue queue_;
    std::vector<std::unique_ptr<engines::Engine>> engines_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_SERVER_HH
