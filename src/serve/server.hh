/**
 * @file
 * Multi-request serving node (§7.2.1 cloud scenario at fleet scale).
 *
 * A Server owns a pool of worker engines built from one shared
 * trained Pipeline (predictor bank, AdaInfer SVMs, RAEE index and
 * corpus are immutable after training and safe to share). drain()
 * runs the live iteration-level BatchScheduler over the queued
 * requests: each request becomes a stepwise DecodeSession pinned to
 * a worker engine, sessions step in parallel per iteration, queued
 * requests are admitted into free slots at every iteration boundary,
 * and sessions are preempted (KV evicted, re-enqueued) when the
 * fleet KV budget runs out. Tokens stream to `on_token` as they are
 * emitted.
 *
 *   serve::Server server(pipe, {.engine = cfg.withSpecEE()});
 *   server.submit(serve::synthesizeStream({.rate_rps = 8.0}));
 *   auto report = server.drain();
 *   // report.fleet.tokens_per_s, .p99_latency_s, .mean_ttft_s, ...
 *
 * ServerOptions::disaggregate(P, D) splits the modeled fleet into
 * prefill- and decode-specialized devices with the KV handoff (and,
 * with overlap, every swap and prefix restore) riding per-device DMA
 * channels off the critical path — see TopologyOptions.
 *
 * Results are bit-deterministic for a fixed request stream no matter
 * how many workers run: every request decodes under its own seed and
 * all scheduling decisions are made in admission order on the fleet
 * clock. With max_batch = 1 and an unbounded KV budget the timeline
 * reduces exactly to sequential one-request-at-a-time serving.
 */

#ifndef SPECEE_SERVE_SERVER_HH
#define SPECEE_SERVE_SERVER_HH

#include <memory>
#include <string>
#include <vector>

#include "engines/pipeline.hh"
#include "serve/batch_scheduler.hh"
#include "serve/request_queue.hh"

namespace specee::serve {

/** Server construction options. */
struct ServerOptions
{
    /** Engine configuration every worker runs. */
    engines::EngineConfig engine;

    hw::HardwareSpec spec = hw::HardwareSpec::a100();

    /** Worker engines stepping decode slots in parallel. */
    int workers = 2;

    SchedulerOptions sched;

    /**
     * Role assignment: split the modeled fleet into `n_prefill`
     * prefill-specialized and `n_decode` decode-specialized devices.
     * Prefill devices chunk-ingest prompts on their own timelines and
     * stream finished KV to the decode side over the priced peer link
     * (`interconnect_gbs`); with `overlap` the handoff (and every
     * swap / prefix restore) rides the per-device DMA channels
     * concurrently with the iteration clock instead of serializing on
     * it. Sugar for setting `sched.topology` directly. Workers stay a
     * physical parallelism knob — any worker steps sessions of either
     * role, and results are bit-identical for any worker count.
     */
    ServerOptions &disaggregate(int n_prefill, int n_decode,
                                bool overlap = true)
    {
        sched.topology.devices = n_prefill + n_decode;
        sched.topology.prefill_devices = n_prefill;
        sched.topology.overlap_transfers = overlap;
        return *this;
    }

    /**
     * Ingress queue bound; 0 = unbounded. Submissions beyond the
     * bound are rejected (submit() returns false) and counted in
     * FleetStats::rejected — the backpressure knob.
     */
    size_t queue_capacity = 0;

    /**
     * Write the fleet event trace of the next drain() here as Chrome
     * trace-event JSON (load at https://ui.perfetto.dev). Non-empty
     * forces sched.trace.enabled for the run; the environment
     * variable SPECEE_TRACE overrides this path (set either to
     * trace without recompiling callers). Empty (default) + no env
     * var leaves tracing off. Tracing never changes emissions or
     * modeled costs.
     */
    std::string trace_path;

    /**
     * Streaming per-token callback, invoked on the drain()ing thread
     * at iteration boundaries in admission order. Tokens re-decoded
     * after a preemption are not re-delivered. Returning false
     * cancels the request at that iteration boundary (streaming
     * backpressure; counted in FleetStats::cancelled).
     */
    TokenCallback on_token;
};

/** Everything a drained request stream produced. */
struct ServeReport
{
    /** Per-request outcomes in admission order. */
    std::vector<RequestOutcome> outcomes;

    FleetStats fleet;
};

/** Multi-worker live-batching serving node over one trained pipeline. */
class Server
{
  public:
    Server(const engines::Pipeline &pipe, const ServerOptions &opts);

    /** @return false when the queue rejected the request. */
    bool submit(Request r);
    /** @return number of requests accepted. */
    size_t submit(std::vector<Request> rs);

    /** Requests submitted but not yet drained. */
    size_t pending() const { return queue_.size(); }

    /** Requests rejected by the bounded queue so far. */
    size_t rejected() const { return queue_.rejected(); }

    /**
     * Serve every queued request to completion through the live
     * scheduler and reduce the fleet metrics. Deterministic for a
     * fixed stream regardless of the worker count.
     */
    ServeReport drain();

    const ServerOptions &options() const { return opts_; }

  private:
    const engines::Pipeline &pipe_;
    ServerOptions opts_;
    RequestQueue queue_;
    std::vector<std::unique_ptr<engines::Engine>> engines_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_SERVER_HH
