#include "serve/request_queue.hh"

#include "util/logging.hh"

namespace specee::serve {

void
RequestQueue::push(Request r)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        specee_assert(!closed_, "push on a closed request queue");
        q_.push_back(std::move(r));
    }
    cv_.notify_one();
}

bool
RequestQueue::pop(Request &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !q_.empty() || closed_; });
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

bool
RequestQueue::tryPop(Request &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace specee::serve
