#include "serve/request_queue.hh"

#include <algorithm>

namespace specee::serve {

namespace {

/** Oldest interactive request, else the queue front. */
std::deque<Request>::iterator
nextByTier(std::deque<Request> &q)
{
    auto it = std::find_if(q.begin(), q.end(), [](const Request &r) {
        return r.priority == Priority::Interactive;
    });
    return it != q.end() ? it : q.begin();
}

} // namespace

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {}

bool
RequestQueue::push(Request r)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || (capacity_ > 0 && q_.size() >= capacity_)) {
            ++rejected_;
            return false;
        }
        q_.push_back(std::move(r));
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::pop(Request &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !q_.empty() || closed_; });
    if (q_.empty())
        return false;
    auto it = nextByTier(q_);
    out = std::move(*it);
    q_.erase(it);
    return true;
}

bool
RequestQueue::tryPop(Request &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty())
        return false;
    auto it = nextByTier(q_);
    out = std::move(*it);
    q_.erase(it);
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

size_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace specee::serve
