#include "serve/request_queue.hh"

namespace specee::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {}

bool
RequestQueue::push(Request r)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || (capacity_ > 0 && q_.size() >= capacity_)) {
            ++rejected_;
            return false;
        }
        q_.push_back(std::move(r));
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::pop(Request &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !q_.empty() || closed_; });
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

bool
RequestQueue::tryPop(Request &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

size_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace specee::serve
