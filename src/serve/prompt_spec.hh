/**
 * @file
 * PromptSpec — first-class prompt identity for the serving layer.
 *
 * Before this API a prompt's identity was smeared across three
 * knobs: GenOptions::prompt_len_override, StreamOptions::prompt_len
 * and the dataset profile's default length, none of which could say
 * "these two requests begin the same way". A PromptSpec names the
 * prompt as (shared template, per-request suffix, optional parent
 * turn), and the deterministic TRUE-dims token sequence is derived
 * from it — which is exactly what a radix prefix cache needs as its
 * key: two requests share cached KV iff their derived token
 * sequences share a prefix.
 *
 * The functional simulator runs prompts at sim dims (kSimPromptLen
 * tokens for legacy prompts). Shared prompts instead derive their
 * sim tokens by a fixed-stride rule: sim position j carries the true
 * token at position j * kPromptSimStride, reduced into the sim
 * vocabulary, plus the final true token as the decode input. The
 * stride rule depends only on absolute true positions — never on a
 * prompt's total length — so any two prompts sharing K true tokens
 * share their first ceil(K / stride) sim tokens, and the physical
 * sim-dims KV written for that span is bit-identical across them
 * (TargetModel::prefill is a pure function of the tokens). That is
 * the property that makes cross-request KV block sharing safe.
 */

#ifndef SPECEE_SERVE_PROMPT_SPEC_HH
#define SPECEE_SERVE_PROMPT_SPEC_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace specee::serve {

/**
 * True-token positions covered by one sim-dims prompt token. Shared
 * prompts mark every stride-th true position; the mark rule is a
 * pure function of the absolute position, so shared true prefixes
 * map to shared sim prefixes regardless of total prompt length.
 */
constexpr int kPromptSimStride = 64;

/** Sim prompt rows covering the first `true_tokens` true positions. */
constexpr int
simRowsForSpan(int true_tokens)
{
    return true_tokens <= 0
               ? 0
               : (true_tokens + kPromptSimStride - 1) / kPromptSimStride;
}

/**
 * First-class prompt identity: a shared template plus a per-request
 * suffix, optionally continuing a parent turn (multi-turn chains).
 * The derived true-token sequence is
 *
 *   tokens(parent) ++ template(template_id)[0..prefix_len)
 *                  ++ suffix(suffix_seed)[0..suffix_len)
 *
 * so requests with the same template (or the same parent chain)
 * share a token-level prefix the radix cache can match. A
 * default-constructed spec is UNSHARED: the request falls back to
 * the deprecated length knobs (GenOptions::prompt_len_override /
 * StreamOptions::prompt_len) and never enters the cache.
 */
struct PromptSpec
{
    /** Shared template identity; 0 = no shared template. */
    uint64_t template_id = 0;

    /** True-dims tokens drawn from the template. */
    int prefix_len = 0;

    /** True-dims tokens of the per-request suffix. */
    int suffix_len = 0;

    /** Seed of the per-request suffix token stream. */
    uint64_t suffix_seed = 0;

    /** Request id of the previous turn (0 = first turn). */
    uint64_t parent_id = 0;

    /** Derivation chain of the previous turn's prompt. */
    std::shared_ptr<const PromptSpec> parent;

    /** True when the prompt can share a prefix with other requests. */
    bool
    shared() const
    {
        return template_id != 0 || parent != nullptr;
    }

    /** Total derived true-dims prompt length (parent chain included). */
    int totalLen() const;

    /** Template id of the chain's root turn (engine affinity key). */
    uint64_t rootTemplate() const;
};

/**
 * Derive the deterministic TRUE-dims token sequence of a shared
 * spec. @pre spec.shared() and totalLen() >= 1
 */
std::vector<int> resolvePromptTokens(const PromptSpec &spec);

/**
 * Sim-dims prompt for a derived true-token sequence: the stride
 * marks (each reduced modulo `sim_vocab`) followed by the final true
 * token as the decode input. Size = simRowsForSpan(len) + 1.
 */
std::vector<int> derivePromptSim(const std::vector<int> &true_tokens,
                                 int sim_vocab);

} // namespace specee::serve

#endif // SPECEE_SERVE_PROMPT_SPEC_HH
